module Document = Speccc_core.Document
module Pipeline = Speccc_core.Pipeline
module Harness = Speccc_harness.Harness
module Fault = Speccc_runtime.Fault
module Eintr = Speccc_runtime.Eintr

let store_compact =
  Fault.Checkpoint.register "store.compact"
    "verdict store, after the compacted temp log is written and before \
     the atomic rename (a SIGKILL or raising trigger here must leave \
     the old log intact; a Delay opens the kill window the compaction \
     drill uses)"

let header = "SPECCCST1\n"
let max_payload = 1 lsl 26 (* a frame longer than 64 MiB is corruption *)

(* ---------- CRC-32 (IEEE 802.3, the zlib polynomial) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- keys ---------- *)

let key_of_texts ?(salt = "") texts =
  Digest.to_hex (Digest.string (String.concat "\x1e" texts ^ "\x01" ^ salt))

let key ?salt (doc : Document.t) =
  (* id + text is the whole canonical identity: the assumption /
     guarantee split is itself a function of the id prefix, and
     translation of a sentence is deterministic, so equal digests mean
     equal hash-consed formulas in any process. *)
  key_of_texts ?salt
    (List.map (fun it -> it.Document.id ^ "\x1f" ^ it.Document.text) doc)

(* Everything that changes the *checked formulas* (or which sentences
   survive to be checked) must be in the salt, or a stored verdict
   could be served for a semantically different check:
   - [time_budget] and [use_smt_abstraction] pick the time-abstraction
     solution, rewriting every timed formula;
   - the [translate] switches ([next_as_x], [future_as_eventually])
     change the per-sentence LTL templates;
   - [recover] decides whether ungrammatical sentences abort the run
     or are dropped, i.e. which formula set is conjoined.
   Engine knobs stay out on purpose: [engine], [lookahead], [bound],
   [fuel], [deadline], [cancel], [skip_engines], [certify] and
   [snapshot] change how hard the engines try, never which formulas
   are checked — a definite verdict is a fact about the formulas, and
   sharing it across engine configurations is the store's point.
   ([translate.lexicon] and [translate.dictionary] also shape the
   formulas, but carry no canonical serialization; every production
   caller uses the defaults, and a caller with a custom lexicon must
   key its store by construction.) *)
let salt_of_options (o : Pipeline.options) =
  let flag b = if b then "1" else "0" in
  String.concat ","
    [
      (match o.Pipeline.time_budget with
       | None -> "tb=gcd"
       | Some b -> "tb=" ^ string_of_int b);
      "smt=" ^ flag o.Pipeline.use_smt_abstraction;
      "nx=" ^ flag o.Pipeline.translate.Speccc_translate.Translate.next_as_x;
      "fe="
      ^ flag o.Pipeline.translate.Speccc_translate.Translate.future_as_eventually;
      "rec=" ^ flag o.Pipeline.recover;
    ]

(* ---------- framing ---------- *)

let put_u32_be b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (n land 0xff))

let get_u32_be s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame_of_payload payload =
  let n = String.length payload in
  let frame = Bytes.create (8 + n) in
  put_u32_be frame 0 n;
  put_u32_be frame 4 (Int32.to_int (crc32 payload) land 0xFFFFFFFF);
  Bytes.blit_string payload 0 frame 8 n;
  frame

let encode_record ~key result =
  frame_of_payload (key ^ "\n" ^ Harness.journal_line result)

(* Snapshot records share the frame format; their payload line is the
   snapshot codec behind a "SNAP " marker instead of a verdict object.
   They let a respawned worker warm-replay anytime progress alongside
   verdicts: a preempted check's frontier survives the process. *)
let snap_marker = "SNAP "

let encode_snapshot_record ~key snap =
  frame_of_payload
    (key ^ "\n" ^ snap_marker ^ Speccc_runtime.Snapshot.to_string snap)

type decoded =
  | Verdict of string * Harness.doc_result
  | Snapshot_of of string * Speccc_runtime.Snapshot.t

(* Record payloads replay exactly like journal lines: fresh = false,
   attempts = 0, no degradation rungs. *)
let decode_payload payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some i ->
      let key = String.sub payload 0 i in
      let line =
        String.sub payload (i + 1) (String.length payload - i - 1)
      in
      if key = "" then None
      else if
        String.length line >= String.length snap_marker
        && String.sub line 0 (String.length snap_marker) = snap_marker
      then
        (* a corrupt snapshot body is dropped (cold start), never fatal *)
        Option.map
          (fun s -> Snapshot_of (key, s))
          (Speccc_runtime.Snapshot.of_string
             (String.sub line (String.length snap_marker)
                (String.length line - String.length snap_marker)))
      else
        Option.map (fun r -> Verdict (key, r)) (Harness.journal_parse_line line)

(* ---------- the store ---------- *)

type t = {
  path : string;
  fsync : bool;
  compact_threshold : int;
  on_recover : string -> unit;
  lock : Mutex.t;
  index : (string, Harness.doc_result) Hashtbl.t;
  snap_index : (string, Speccc_runtime.Snapshot.t) Hashtbl.t;
  mutable fd : Unix.file_descr option;
  mutable dead : int; (* superseded records still in the log *)
  mutable appends : int;
  mutable hits : int;
  mutable misses : int;
  mutable compactions : int;
  mutable recovered_bytes : int;
  mutable crc_failures : int;
  mutable file_bytes : int;
}

type stats = {
  live : int;
  snapshots : int;
  appends : int;
  hits : int;
  misses : int;
  compactions : int;
  recovered_bytes : int;
  crc_failures : int;
  file_bytes : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write_all fd bytes = Eintr.write_all fd bytes

let maybe_fsync t fd = if t.fsync then try Unix.fsync fd with Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Replay the log into [index].  Returns the byte offset of the first
   unusable frame (= where the file must be truncated), or the file
   length when every frame is sound.  Interior records that frame
   correctly but fail to parse are skipped, not fatal: their
   boundaries are still trustworthy. *)
let scan ~on_corrupt ~count_crc index snap_index data =
  let len = String.length data in
  let pos = ref (String.length header) in
  let good_end = ref !pos in
  (try
     while !pos < len do
       if len - !pos < 8 then raise Exit;
       let n = get_u32_be data !pos in
       let crc = get_u32_be data (!pos + 4) in
       if n <= 0 || n > max_payload then raise Exit;
       if len - !pos - 8 < n then raise Exit;
       let payload = String.sub data (!pos + 8) n in
       if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then begin
         count_crc ();
         raise Exit
       end;
       (match decode_payload payload with
       | Some (Verdict (key, result)) ->
           Hashtbl.replace index key result;
           (* a definite verdict supersedes any saved progress *)
           Hashtbl.remove snap_index key
       | Some (Snapshot_of (key, snap)) ->
           Hashtbl.replace snap_index key snap
       | None ->
           on_corrupt
             (Printf.sprintf "unparsable record payload at offset %d (skipped)"
                !pos));
       pos := !pos + 8 + n;
       good_end := !pos
     done
   with Exit -> ());
  !good_end

let default_on_recover msg = Printf.eprintf "speccc store: %s\n%!" msg

let open_ ?(fsync = false) ?(compact_threshold = 1024) ?on_recover path =
  let on_recover = Option.value on_recover ~default:default_on_recover in
  let index = Hashtbl.create 256 in
  let snap_index = Hashtbl.create 64 in
  let hlen = String.length header in
  let data = if Sys.file_exists path then read_file path else "" in
  let recovered = ref 0 in
  let crc_failures = ref 0 in
  let valid_header =
    String.length data >= hlen && String.sub data 0 hlen = header
  in
  let keep, rebuild_header =
    if not valid_header then begin
      (* empty/new file, or not a store file (torn or foreign header):
         recover to an empty store rather than refuse to serve *)
      if String.length data > 0 then begin
        recovered := String.length data;
        on_recover
          (Printf.sprintf "%s: bad header, %d bytes discarded" path
             (String.length data))
      end;
      (0, true)
    end
    else begin
      let keep =
        scan
          ~on_corrupt:(fun msg -> on_recover (path ^ ": " ^ msg))
          ~count_crc:(fun () -> incr crc_failures)
          index snap_index data
      in
      if keep < String.length data then begin
        recovered := String.length data - keep;
        on_recover
          (Printf.sprintf "%s: torn tail, %d bytes truncated at offset %d"
             path !recovered keep)
      end;
      (keep, false)
    end
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (try
     if rebuild_header then begin
       Unix.ftruncate fd 0;
       ignore (Unix.write_substring fd header 0 hlen)
     end
     else if !recovered > 0 then Unix.ftruncate fd keep
   with Unix.Unix_error _ -> ());
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let file_bytes = (Unix.fstat fd).Unix.st_size in
  if fsync then (try Unix.fsync fd with Unix.Unix_error _ -> ());
  {
    path;
    fsync;
    compact_threshold = max 1 compact_threshold;
    on_recover;
    lock = Mutex.create ();
    index;
    snap_index;
    fd = Some fd;
    dead = 0;
    appends = 0;
    hits = 0;
    misses = 0;
    compactions = 0;
    recovered_bytes = !recovered;
    crc_failures = !crc_failures;
    file_bytes;
  }

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.index k with
      | Some r ->
          t.hits <- t.hits + 1;
          Some r
      | None ->
          t.misses <- t.misses + 1;
          None)

let cacheable (r : Harness.doc_result) =
  r.Harness.fresh
  &&
  match r.Harness.verdict with
  | Harness.Consistent | Harness.Inconsistent -> true
  | Harness.Unknown | Harness.Failed _ -> false

let verdict_tag = function
  | Harness.Consistent -> 0
  | Harness.Inconsistent -> 1
  | Harness.Unknown -> 2
  | Harness.Failed _ -> 3

let append_fd t =
  match t.fd with
  | Some fd -> fd
  | None -> raise (Sys_error (t.path ^ ": store is closed"))

(* Rewrite live records only; crash-safe via temp file + atomic
   rename.  Caller holds the lock. *)
let compact_locked t =
  Fault.in_scope store_compact @@ fun () ->
  let fd = append_fd t in
  let tmp = t.path ^ ".compact.tmp" in
  let out =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     ignore (Unix.write_substring out header 0 (String.length header));
     Hashtbl.iter
       (fun key result -> write_all out (encode_record ~key result))
       t.index;
     (* live snapshots (keys still without a verdict) survive
        compaction: a respawned worker must be able to resume them *)
     Hashtbl.iter
       (fun key snap ->
          if not (Hashtbl.mem t.index key) then
            write_all out (encode_snapshot_record ~key snap))
       t.snap_index;
     maybe_fsync t out;
     Unix.close out
   with e ->
     (try Unix.close out with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* The temp log is complete but the rename has not happened: dying
     here must leave the old log authoritative and the tmp ignorable. *)
  Fault.hit store_compact;
  Unix.rename tmp t.path;
  if t.fsync then begin
    (* Persist the rename itself: fsync the containing directory. *)
    match Unix.openfile (Filename.dirname t.path) [ Unix.O_RDONLY ] 0 with
    | dirfd ->
        (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
        (try Unix.close dirfd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  end;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let fd = Unix.openfile t.path [ Unix.O_RDWR; Unix.O_APPEND ] 0o644 in
  t.fd <- Some fd;
  t.dead <- 0;
  t.compactions <- t.compactions + 1;
  t.file_bytes <- (Unix.fstat fd).Unix.st_size

let put t ~key result =
  locked t (fun () ->
      (* a definite verdict supersedes any saved anytime progress *)
      if Hashtbl.mem t.snap_index key then begin
        Hashtbl.remove t.snap_index key;
        t.dead <- t.dead + 1
      end;
      let prev = Hashtbl.find_opt t.index key in
      match prev with
      | Some p when verdict_tag p.Harness.verdict = verdict_tag result.Harness.verdict
        ->
          (* Same fact already durable: re-appending would only grow
             the log. *)
          ()
      | _ ->
          Fault.in_scope Fault.Checkpoint.store_append @@ fun () ->
          let fd = append_fd t in
          let frame = encode_record ~key result in
          (* A raising trigger here models dying mid-write: nothing
             reaches the log, the index is untouched.  A [Corrupt]
             trigger models dying *inside* the write: half the frame
             reaches the disk and the handle dies with the process, so
             the next open finds a torn tail and truncates it. *)
          if Fault.corrupt Fault.Checkpoint.store_append then begin
            let torn = Bytes.sub frame 0 (max 1 (Bytes.length frame / 2)) in
            write_all fd torn;
            maybe_fsync t fd;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            t.fd <- None;
            raise (Sys_error (t.path ^ ": injected torn write"))
          end;
          write_all fd frame;
          maybe_fsync t fd;
          t.appends <- t.appends + 1;
          t.file_bytes <- t.file_bytes + Bytes.length frame;
          (* Index the replayed form, so a warm restart and this
             process answer bit-for-bit identically. *)
          let stored =
            {
              result with
              Harness.fresh = false;
              attempts = 0;
              degradation = [];
            }
          in
          Hashtbl.replace t.index key stored;
          (match prev with
          | Some _ -> t.dead <- t.dead + 1
          | None -> ());
          if t.dead >= t.compact_threshold then compact_locked t)

let compact t = locked t (fun () -> compact_locked t)

(* ---------- anytime snapshot records ---------- *)

let put_snapshot t ~key snap =
  locked t (fun () ->
      (* progress for a key whose verdict is already durable is moot *)
      if not (Hashtbl.mem t.index key) then begin
        let encoded = Speccc_runtime.Snapshot.to_string snap in
        let same =
          match Hashtbl.find_opt t.snap_index key with
          | Some prev -> Speccc_runtime.Snapshot.to_string prev = encoded
          | None -> false
        in
        if not same then begin
          Fault.in_scope Fault.Checkpoint.store_append @@ fun () ->
          let fd = append_fd t in
          Fault.hit Fault.Checkpoint.store_append;
          let frame = encode_snapshot_record ~key snap in
          write_all fd frame;
          maybe_fsync t fd;
          t.appends <- t.appends + 1;
          t.file_bytes <- t.file_bytes + Bytes.length frame;
          if Hashtbl.mem t.snap_index key then t.dead <- t.dead + 1;
          Hashtbl.replace t.snap_index key snap;
          if t.dead >= t.compact_threshold then compact_locked t
        end
      end)

let find_snapshot t key =
  locked t (fun () -> Hashtbl.find_opt t.snap_index key)

let stats t =
  locked t (fun () ->
      {
        live = Hashtbl.length t.index;
        snapshots = Hashtbl.length t.snap_index;
        appends = t.appends;
        hits = t.hits;
        misses = t.misses;
        compactions = t.compactions;
        recovered_bytes = t.recovered_bytes;
        crc_failures = t.crc_failures;
        file_bytes = t.file_bytes;
      })

let close t =
  locked t (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
          maybe_fsync t fd;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.fd <- None)
