(** Persistent content-addressed verdict store.

    The checking pipeline is check-once math: identical hash-consed
    specs always yield the same definite verdict, so a verdict, once
    earned, is worth keeping {e across process lifetimes}.  The store
    is an append-only record log plus an in-memory index; any process
    that opens it warm-starts straight to check-once/answer-forever
    semantics.

    {2 Keys}

    Hash-consed formula ids are per-process (the unique table is
    rebuilt on every start), so they cannot name a record on disk.
    The durable proxy is a content digest of the {e canonical parsed
    document} — the requirement ids, sentence texts and
    assumption/guarantee split that deterministically produce the
    hash-consed formulas — salted with the pipeline options that
    change the checked formulas themselves (today: the time-abstraction
    budget).  Engine choice, fuel, deadlines and lookahead are
    deliberately {e not} part of the key: they decide whether a
    definite verdict is {e reached}, never which one is true.

    {2 On-disk format}

    {v
    header   "SPECCCST1\n"
    record   u32_be payload_length | u32_be crc32(payload) | payload
    payload  <key> '\n' <Harness.journal_line verdict object>
           | <key> '\n' "SNAP " <Snapshot.to_string codec line>
    v}

    Appends are flushed (optionally fsynced) per record.  {!open_}
    replays the log into the index; a torn tail — short header, short
    payload, or CRC mismatch, i.e. the process died mid-append — is
    {e truncated off} and counted in [recovered_bytes], so the next
    append starts on a clean record boundary.  Everything after the
    first bad frame is dropped: record boundaries downstream of a torn
    frame cannot be trusted.

    Updates are append-wins-last; {!compact} (also triggered
    automatically once enough dead records accumulate) rewrites the
    live index to a temporary file and atomically renames it over the
    log, so a crash at any point leaves either the old or the new file,
    never a hybrid.

    All operations are mutex-protected: serve workers on any domain
    share one handle. *)

type t

type stats = {
  live : int;              (** distinct keys in the index *)
  snapshots : int;         (** live anytime-snapshot entries *)
  appends : int;           (** records appended by this handle *)
  hits : int;
  misses : int;
  compactions : int;
  recovered_bytes : int;   (** torn/corrupt tail bytes truncated at open *)
  crc_failures : int;      (** frames dropped for a CRC mismatch at open *)
  file_bytes : int;        (** current log size on disk *)
}

val key_of_texts : ?salt:string -> string list -> string
(** Content digest (hex) of canonical requirement texts. *)

val key : ?salt:string -> Speccc_core.Document.t -> string
(** Content digest of a parsed document: ids, texts and the
    assumption/guarantee split all feed the digest. *)

val salt_of_options : Speccc_core.Pipeline.options -> string
(** The key salt for the option fields that change the {e checked
    formulas} (and hence possibly the verdict): the time-abstraction
    budget and solver choice, the translation template switches, and
    error recovery (which decides the surviving sentence set).
    Engine/fuel/deadline/lookahead/bound and the other effort knobs
    are excluded on purpose — a definite verdict is a fact about the
    formulas, shared across engine configurations. *)

val open_ :
  ?fsync:bool ->
  ?compact_threshold:int ->
  ?on_recover:(string -> unit) ->
  string ->
  t
(** Open (creating if absent) the store at a path, replaying the log
    into memory and truncating any torn tail.  [fsync] (default
    false) fsyncs every append and compaction.  [compact_threshold]
    (default 1024) is the number of dead (superseded) records that
    triggers automatic compaction.  [on_recover] (default: stderr
    warning) is told about truncated tails and dropped frames.
    Raises [Sys_error]/[Unix.Unix_error] only for real I/O failure
    (permissions, missing directory) — corruption never raises. *)

val find : t -> string -> Speccc_harness.Harness.doc_result option
(** Index lookup; counts a hit or a miss. *)

val put : t -> key:string -> Speccc_harness.Harness.doc_result -> unit
(** Append a record and update the index.  A put whose key is already
    bound to the same verdict class is deduplicated (no append, no
    growth); a conflicting verdict is appended and wins, so the log
    stays a faithful history.  Announces the [store.append] fault
    checkpoint before writing. *)

val put_snapshot : t -> key:string -> Speccc_runtime.Snapshot.t -> unit
(** Append an anytime-snapshot record: the progress frontier of a
    preempted check, keyed like its verdict would be.  Snapshot
    records ride the same framed log (payload line ["SNAP " ^ codec]);
    a later definite verdict for the key supersedes the snapshot (it
    is dropped from the index and at the next compaction), identical
    re-puts are deduplicated, and a corrupt snapshot body is skipped
    at open — the consumer cold-starts, never resumes bad state. *)

val find_snapshot : t -> string -> Speccc_runtime.Snapshot.t option
(** The live snapshot for a key, if its verdict is not yet durable. *)

val cacheable : Speccc_harness.Harness.doc_result -> bool
(** [true] exactly for fresh definite verdicts
    ([Consistent]/[Inconsistent]) — the only results whose truth is a
    property of the spec rather than of the budget that ran it. *)

val compact : t -> unit
(** Rewrite the log to live records only, via temp-file +
    atomic rename (+ directory fsync when [fsync]). *)

val stats : t -> stats

val close : t -> unit
(** Flush and close the append descriptor.  Further [put]s raise;
    [find]s keep answering from the index. *)

val crc32 : string -> int32
(** IEEE CRC-32 of a string — exposed for tests and drills. *)
