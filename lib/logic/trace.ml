type letter = (string * bool) list

type t = {
  prefix : letter list;
  loop : letter list;
  letters : letter array;   (* prefix @ loop *)
  loop_start : int;
}

let make ~prefix ~loop =
  if loop = [] then invalid_arg "Trace.make: empty loop";
  {
    prefix;
    loop;
    letters = Array.of_list (prefix @ loop);
    loop_start = List.length prefix;
  }

let constant letter = make ~prefix:[] ~loop:[ letter ]
let length word = Array.length word.letters
let loop_start word = word.loop_start

(* Position after folding into the stored range. *)
let fold_position word i =
  let n = Array.length word.letters in
  if i < n then i
  else
    let loop_len = n - word.loop_start in
    word.loop_start + ((i - word.loop_start) mod loop_len)

let letter_at word i =
  if i < 0 then invalid_arg "Trace.letter_at: negative position";
  word.letters.(fold_position word i)

let successor word i =
  let n = Array.length word.letters in
  if i + 1 < n then i + 1 else word.loop_start

let prop_true letter name =
  match List.assoc_opt name letter with Some b -> b | None -> false

(* Least fixpoint of  v(i) = target(i) ∨ (hold(i) ∧ v(succ i))
   when [init] is false (Until-style); greatest fixpoint of
   v(i) = hold(i) ∧ v(succ i)  when [init] is true (Always-style,
   [target] ignored as always-false). *)
let fixpoint word ~init hold target =
  let n = Array.length hold in
  let vals = Array.make n init in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let v =
        if init then hold.(i) && vals.(successor word i)
        else target.(i) || (hold.(i) && vals.(successor word i))
      in
      if v <> vals.(i) then begin
        vals.(i) <- v;
        changed := true
      end
    done
  done;
  vals

(* Evaluate a formula over all stored positions.  Boolean connectives
   and [Next] are direct; [Until] is a least fixpoint (init false) and
   [Release] a greatest fixpoint (init true), iterated to stability,
   which takes at most [length] rounds.  Composite subterms are
   memoized by formula id for the duration of one call, so shared
   subterms of hash-consed formulas are evaluated once; the returned
   arrays are never mutated after construction, which makes the
   sharing safe. *)
let values word formula : bool array =
  let n = Array.length word.letters in
  let pointwise op a b = Array.init n (fun i -> op a.(i) b.(i)) in
  let memo : (int, bool array) Hashtbl.t = Hashtbl.create 64 in
  let rec values_of formula =
    match formula with
    | Ltl.True | Ltl.False | Ltl.Prop _ -> compute formula
    | _ ->
      let key = Ltl.id formula in
      (match Hashtbl.find_opt memo key with
       | Some vals -> vals
       | None ->
         let vals = compute formula in
         Hashtbl.add memo key vals;
         vals)
  and compute = function
    | Ltl.True -> Array.make n true
    | Ltl.False -> Array.make n false
    | Ltl.Prop p -> Array.init n (fun i -> prop_true word.letters.(i) p)
    | Ltl.Not f -> Array.map not (values_of f)
    | Ltl.And (f, g) -> pointwise ( && ) (values_of f) (values_of g)
    | Ltl.Or (f, g) -> pointwise ( || ) (values_of f) (values_of g)
    | Ltl.Implies (f, g) ->
      pointwise (fun a b -> (not a) || b) (values_of f) (values_of g)
    | Ltl.Iff (f, g) ->
      pointwise (fun a b -> a = b) (values_of f) (values_of g)
    | Ltl.Next f ->
      let inner = values_of f in
      Array.init n (fun i -> inner.(successor word i))
    | Ltl.Eventually f ->
      fixpoint word ~init:false (Array.make n true) (values_of f)
    | Ltl.Always f ->
      fixpoint word ~init:true (values_of f) (Array.make n false)
    | Ltl.Until (f, g) ->
      fixpoint word ~init:false (values_of f) (values_of g)
    | Ltl.Weak_until (f, g) ->
      (* φ W ψ = (φ U ψ) ∨ G φ *)
      let hold = values_of f and target = values_of g in
      let until_vals = fixpoint word ~init:false hold target in
      let always_vals =
        fixpoint word ~init:true hold (Array.make n false)
      in
      pointwise ( || ) until_vals always_vals
    | Ltl.Release (f, g) ->
      (* ψ R φ: φ holds until (and including when) ψ holds; greatest
         fixpoint of  v(i) = φ(i) ∧ (ψ(i) ∨ v(succ i)). *)
      let release_vals = Array.make n true in
      let trigger = values_of f and hold = values_of g in
      let changed = ref true in
      while !changed do
        changed := false;
        for i = n - 1 downto 0 do
          let v =
            hold.(i) && (trigger.(i) || release_vals.(successor word i))
          in
          if v <> release_vals.(i) then begin
            release_vals.(i) <- v;
            changed := true
          end
        done
      done;
      release_vals
  in
  values_of formula

let holds_at word i formula =
  let vals = values word formula in
  vals.(fold_position word i)

let holds word formula = holds_at word 0 formula

let pp ppf word =
  let pp_letter ppf letter =
    let trues =
      List.filter_map (fun (p, b) -> if b then Some p else None) letter
    in
    Format.fprintf ppf "{%s}" (String.concat "," trues)
  in
  let pp_list = Format.pp_print_list ~pp_sep:Format.pp_print_space pp_letter in
  Format.fprintf ppf "@[%a@ (%a)^w@]" pp_list word.prefix pp_list word.loop
