(** Linear temporal logic: abstract syntax and structural operations.

    The grammar follows Sec. IV-A of the paper:
    {v φ ::= p | ¬φ | φ ∨ φ | Xφ | ♦φ | □φ | φ U φ v}
    extended with the derived connectives the paper uses (∧, →, ↔) and
    with the weak-until and release operators needed by negation normal
    form and by the translator's Universality templates. *)

type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Next of t
  | Eventually of t
  | Always of t
  | Until of t * t
  | Weak_until of t * t
  | Release of t * t

(** {1 Smart constructors}

    These perform only constant folding (identities involving [True]
    and [False], plus collapsing physically equal operands of [conj]
    and [disj]) so that formulas stay syntactically close to their
    source requirement, as the paper's appendix output does.  Every
    node they allocate is interned in a per-domain unique table
    (hash-consing), so structurally equal results of smart
    construction are physically equal within a domain. *)

val tt : t
val ff : t
val prop : string -> t
val neg : t -> t
val conj : t -> t -> t
val disj : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val next : t -> t
val eventually : t -> t
val always : t -> t
val until : t -> t -> t
val weak_until : t -> t -> t
val release : t -> t -> t

val conj_list : t list -> t
(** [conj_list [f1; ...; fn]] is [f1 ∧ ... ∧ fn] ([True] when empty). *)

val disj_list : t list -> t
(** [disj_list [f1; ...; fn]] is [f1 ∨ ... ∨ fn] ([False] when empty). *)

val next_n : int -> t -> t
(** [next_n k f] is [X^k f]. Raises [Invalid_argument] if [k < 0]. *)

(** {1 Hash-consing}

    Every smart-constructor allocation goes through a per-domain
    unique table, assigning each structurally-distinct formula a small
    integer {!id}.  Ids are stable for the lifetime of the domain and
    are the keys of every memo table in this library, but their
    numeric order depends on interning order and therefore differs
    between domains: use them for memoization, never for anything that
    can leak into output ordering (that is what the structural
    {!compare} below is for). *)

val intern : t -> t
(** The canonical (maximally shared) node for this formula in the
    current domain.  Structurally equal inputs return the same
    physical node; interning a formula built from raw constructors is
    how pattern-built terms join the shared world. *)

val id : t -> int
(** The unique id of the formula's canonical node, interning it first
    when needed.  Two formulas have the same id iff they are
    structurally equal (within one domain). *)

val equal_fast : t -> t -> bool
(** Same relation as {!equal}; O(1) on interned formulas. *)

val compare_fast : t -> t -> int
(** A total order consistent with {!equal}, by id — cheap, but
    domain-dependent; see the warning above. *)

val hash_fast : t -> int
(** The id, which is a perfect hash within a domain. *)

type hashcons_stats = { nodes : int; hc_hits : int; hc_misses : int }

val hashcons_stats : unit -> hashcons_stats
(** Unique-table counters for the current domain: distinct nodes ever
    interned, and lookup hits/misses (hits measure sharing). *)

(** {1 Structure} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val size : t -> int
(** Number of AST nodes. *)

val props : t -> string list
(** Propositions occurring in the formula, sorted, without duplicates. *)

val next_depth : t -> int
(** Maximal nesting depth of [Next]; the paper's θ for a requirement. *)

val next_chains : t -> int list
(** Lengths of all maximal chains of consecutive [Next] operators,
    longest first, without duplicates; the paper's set Θ (Sec. IV-E)
    restricted to one formula. A chain of length 0 is never reported. *)

val map_props : (string -> t) -> t -> t
(** Substitute every proposition by a formula. *)

val rename_props : (string -> string) -> t -> t

val subformulas : t -> t list
(** All distinct subformulas, in bottom-up order (operands before
    operators). *)

val is_propositional : t -> bool
(** True when the formula contains no temporal operator. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
