type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Next of t
  | Eventually of t
  | Always of t
  | Until of t * t
  | Weak_until of t * t
  | Release of t * t

(* ---------- hash-consing ----------

   A per-domain unique table maps each structurally-distinct formula to
   one canonical node and a small integer id.  The table is keyed
   structurally, so raw pattern-built formulas still resolve to the
   canonical node; the polymorphic equality used by [Hashtbl]
   short-circuits on physical equality at every subterm, which makes
   bucket comparison effectively O(1) once children are canonical.

   Ids are only meaningful within the domain that assigned them (each
   worker domain of the batch harness owns a private table), which is
   why [equal]/[compare]/[hash] below stay structural: anything that
   could leak into output ordering must not depend on interning order. *)

type hashcons_stats = { nodes : int; hc_hits : int; hc_misses : int }

type unique_table = {
  entries : (t, t * int) Hashtbl.t;
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
}

let unique_key =
  Domain.DLS.new_key (fun () ->
      { entries = Hashtbl.create 1024; next_id = 0; hits = 0; misses = 0 })

let unique () = Domain.DLS.get unique_key

let rec intern_entry u formula =
  match Hashtbl.find_opt u.entries formula with
  | Some entry ->
    u.hits <- u.hits + 1;
    entry
  | None ->
    (* Canonicalize the children first so the stored node shares
       maximally; the rebuilt node is structurally equal to [formula]
       and therefore still absent from the table. *)
    let canonical =
      match formula with
      | True | False | Prop _ -> formula
      | Not g ->
        let g' = fst (intern_entry u g) in
        if g' == g then formula else Not g'
      | Next g ->
        let g' = fst (intern_entry u g) in
        if g' == g then formula else Next g'
      | Eventually g ->
        let g' = fst (intern_entry u g) in
        if g' == g then formula else Eventually g'
      | Always g ->
        let g' = fst (intern_entry u g) in
        if g' == g then formula else Always g'
      | And (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else And (g', h')
      | Or (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else Or (g', h')
      | Implies (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else Implies (g', h')
      | Iff (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else Iff (g', h')
      | Until (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else Until (g', h')
      | Weak_until (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else Weak_until (g', h')
      | Release (g, h) ->
        let g' = fst (intern_entry u g) and h' = fst (intern_entry u h) in
        if g' == g && h' == h then formula else Release (g', h')
    in
    u.misses <- u.misses + 1;
    let id = u.next_id in
    u.next_id <- id + 1;
    let entry = (canonical, id) in
    Hashtbl.replace u.entries canonical entry;
    entry

let intern formula = fst (intern_entry (unique ()) formula)
let id formula = snd (intern_entry (unique ()) formula)
let hashcons formula = intern formula

let equal_fast f g = f == g || id f = id g
let compare_fast f g = if f == g then 0 else Int.compare (id f) (id g)
let hash_fast = id

let hashcons_stats () =
  let u = unique () in
  { nodes = u.next_id; hc_hits = u.hits; hc_misses = u.misses }

(* ---------- smart constructors ----------

   Constant folding as before, with every allocated node routed through
   the unique table.  [conj]/[disj] additionally collapse physically
   equal operands — a test that is free once operands are interned. *)

let tt = True
let ff = False
let prop name = hashcons (Prop name)

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> hashcons (Not f)

let conj f g =
  match f, g with
  | True, h | h, True -> h
  | False, _ | _, False -> False
  | _ -> if f == g then f else hashcons (And (f, g))

let disj f g =
  match f, g with
  | False, h | h, False -> h
  | True, _ | _, True -> True
  | _ -> if f == g then f else hashcons (Or (f, g))

let implies f g =
  match f, g with
  | True, h -> h
  | False, _ -> True
  | _, True -> True
  | h, False -> neg h
  | _ -> hashcons (Implies (f, g))

let iff f g =
  match f, g with
  | True, h | h, True -> h
  | False, h | h, False -> neg h
  | _ -> hashcons (Iff (f, g))

let next f = hashcons (Next f)

let eventually = function
  | True -> True
  | False -> False
  | Eventually _ as f -> f
  | f -> hashcons (Eventually f)

let always = function
  | True -> True
  | False -> False
  | Always _ as f -> f
  | f -> hashcons (Always f)

let until f g =
  match f, g with
  | _, True -> True
  | _, False -> False
  | True, h -> eventually h
  | False, h -> h
  | _ -> hashcons (Until (f, g))

let weak_until f g =
  match f, g with
  | _, True -> True
  | True, _ -> True
  | False, h -> h
  | f, False -> always f
  | _ -> hashcons (Weak_until (f, g))

let release f g =
  match f, g with
  | _, True -> True
  | _, False -> False
  | True, h -> h
  | False, h -> always h
  | _ -> hashcons (Release (f, g))

let conj_list fs = List.fold_left conj True fs
let disj_list fs = List.fold_left disj False fs

let next_n k f =
  if k < 0 then invalid_arg "Ltl.next_n: negative count";
  let rec loop k f = if k = 0 then f else loop (k - 1) (next f) in
  loop k f

let equal = ( = )
let compare = Stdlib.compare
let hash = Hashtbl.hash

let rec size = function
  | True | False | Prop _ -> 1
  | Not f | Next f | Eventually f | Always f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g)
  | Until (f, g) | Weak_until (f, g) | Release (f, g) ->
    1 + size f + size g

module String_set = Set.Make (String)

let props formula =
  let rec collect acc = function
    | True | False -> acc
    | Prop p -> String_set.add p acc
    | Not f | Next f | Eventually f | Always f -> collect acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g)
    | Until (f, g) | Weak_until (f, g) | Release (f, g) ->
      collect (collect acc f) g
  in
  String_set.elements (collect String_set.empty formula)

let rec next_depth = function
  | True | False | Prop _ -> 0
  | Next f -> 1 + next_depth f
  | Not f | Eventually f | Always f -> next_depth f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g)
  | Until (f, g) | Weak_until (f, g) | Release (f, g) ->
    max (next_depth f) (next_depth g)

module Int_set = Set.Make (Int)

(* A maximal chain is a run of [Next] whose parent is not a [Next]. *)
let next_chains formula =
  let rec chain_length = function Next f -> 1 + chain_length f | _ -> 0 in
  let rec below = function Next f -> below f | f -> f in
  let rec collect acc = function
    | True | False | Prop _ -> acc
    | Next _ as f ->
      let acc = Int_set.add (chain_length f) acc in
      collect acc (below f)
    | Not f | Eventually f | Always f -> collect acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g)
    | Until (f, g) | Weak_until (f, g) | Release (f, g) ->
      collect (collect acc f) g
  in
  List.rev (Int_set.elements (collect Int_set.empty formula))

let rec map_props subst = function
  | True -> True
  | False -> False
  | Prop p -> subst p
  | Not f -> neg (map_props subst f)
  | And (f, g) -> conj (map_props subst f) (map_props subst g)
  | Or (f, g) -> disj (map_props subst f) (map_props subst g)
  | Implies (f, g) -> implies (map_props subst f) (map_props subst g)
  | Iff (f, g) -> iff (map_props subst f) (map_props subst g)
  | Next f -> next (map_props subst f)
  | Eventually f -> eventually (map_props subst f)
  | Always f -> always (map_props subst f)
  | Until (f, g) -> until (map_props subst f) (map_props subst g)
  | Weak_until (f, g) -> weak_until (map_props subst f) (map_props subst g)
  | Release (f, g) -> release (map_props subst f) (map_props subst g)

let rename_props rename = map_props (fun p -> prop (rename p))

module Self = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Self)
module Map = Map.Make (Self)

let subformulas formula =
  let seen = ref Set.empty in
  let order = ref [] in
  let visit_node f =
    if not (Set.mem f !seen) then begin
      seen := Set.add f !seen;
      order := f :: !order
    end
  in
  let rec visit f =
    (match f with
     | True | False | Prop _ -> ()
     | Not g | Next g | Eventually g | Always g -> visit g
     | And (g, h) | Or (g, h) | Implies (g, h) | Iff (g, h)
     | Until (g, h) | Weak_until (g, h) | Release (g, h) ->
       visit g;
       visit h);
    visit_node f
  in
  visit formula;
  List.rev !order

let rec is_propositional = function
  | True | False | Prop _ -> true
  | Not f -> is_propositional f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
    is_propositional f && is_propositional g
  | Next _ | Eventually _ | Always _ | Until _ | Weak_until _ | Release _ ->
    false
