(* Negation normal form is a pure function of the (hash-consed)
   formula, so both polarities share one id-keyed memo table: key
   [2*id] holds the positive translation, [2*id+1] the negative one.
   Leaves skip the table — computing them is cheaper than a lookup. *)

module C = Speccc_cache.Cache.Make (Speccc_cache.Cache.Int_key)

let table =
  C.create_dls ~name:"logic.nnf"
    ~capacity:(Speccc_cache.Cache.capacity ~name:"logic.nnf" ~default:16384)
    ()

let rec positive f =
  match f with
  | Ltl.True | Ltl.False | Ltl.Prop _ -> f
  | _ ->
    C.memo (Domain.DLS.get table) (2 * Ltl.id f) (fun () -> positive_step f)

and negative f =
  match f with
  | Ltl.True -> Ltl.False
  | Ltl.False -> Ltl.True
  | Ltl.Prop _ -> Ltl.neg f
  | _ ->
    C.memo (Domain.DLS.get table)
      ((2 * Ltl.id f) + 1)
      (fun () -> negative_step f)

and positive_step = function
  | Ltl.True -> Ltl.True
  | Ltl.False -> Ltl.False
  | Ltl.Prop _ as p -> p
  | Ltl.Not g -> negative g
  | Ltl.And (g, h) -> Ltl.conj (positive g) (positive h)
  | Ltl.Or (g, h) -> Ltl.disj (positive g) (positive h)
  | Ltl.Implies (g, h) -> Ltl.disj (negative g) (positive h)
  | Ltl.Iff (g, h) ->
    (* (g ∧ h) ∨ (¬g ∧ ¬h) *)
    Ltl.disj
      (Ltl.conj (positive g) (positive h))
      (Ltl.conj (negative g) (negative h))
  | Ltl.Next g -> Ltl.next (positive g)
  | Ltl.Eventually g -> Ltl.eventually (positive g)
  | Ltl.Always g -> Ltl.always (positive g)
  | Ltl.Until (g, h) -> Ltl.until (positive g) (positive h)
  | Ltl.Weak_until (g, h) ->
    (* φ W ψ ≡ ψ R (φ ∨ ψ) *)
    let phi = positive g and psi = positive h in
    Ltl.release psi (Ltl.disj phi psi)
  | Ltl.Release (g, h) -> Ltl.release (positive g) (positive h)

and negative_step = function
  | Ltl.True -> Ltl.False
  | Ltl.False -> Ltl.True
  | Ltl.Prop _ as p -> Ltl.neg p
  | Ltl.Not g -> positive g
  | Ltl.And (g, h) -> Ltl.disj (negative g) (negative h)
  | Ltl.Or (g, h) -> Ltl.conj (negative g) (negative h)
  | Ltl.Implies (g, h) -> Ltl.conj (positive g) (negative h)
  | Ltl.Iff (g, h) ->
    Ltl.disj
      (Ltl.conj (positive g) (negative h))
      (Ltl.conj (negative g) (positive h))
  | Ltl.Next g -> Ltl.next (negative g)
  | Ltl.Eventually g -> Ltl.always (negative g)
  | Ltl.Always g -> Ltl.eventually (negative g)
  | Ltl.Until (g, h) -> Ltl.release (negative g) (negative h)
  | Ltl.Weak_until (g, h) ->
    (* ¬(φ W ψ) ≡ ¬ψ U (¬φ ∧ ¬ψ) *)
    let nphi = negative g and npsi = negative h in
    Ltl.until npsi (Ltl.conj nphi npsi)
  | Ltl.Release (g, h) -> Ltl.until (negative g) (negative h)

let of_formula f = positive f

let rec is_nnf = function
  | Ltl.True | Ltl.False | Ltl.Prop _ -> true
  | Ltl.Not (Ltl.Prop _) -> true
  | Ltl.Not _ -> false
  | Ltl.Implies _ | Ltl.Iff _ | Ltl.Weak_until _ -> false
  | Ltl.And (g, h) | Ltl.Or (g, h) | Ltl.Until (g, h) | Ltl.Release (g, h) ->
    is_nnf g && is_nnf h
  | Ltl.Next g | Ltl.Eventually g | Ltl.Always g -> is_nnf g

let rec simplify f =
  let f' = simplify_once f in
  if Ltl.equal f f' then f else simplify f'

and simplify_once = function
  | Ltl.True -> Ltl.True
  | Ltl.False -> Ltl.False
  | Ltl.Prop _ as p -> p
  | Ltl.Not g -> Ltl.neg (simplify_once g)
  | Ltl.And (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then g
    else if Ltl.equal g (Ltl.neg h) then Ltl.False
    else Ltl.conj g h
  | Ltl.Or (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then g
    else if Ltl.equal g (Ltl.neg h) then Ltl.True
    else Ltl.disj g h
  | Ltl.Implies (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then Ltl.True else Ltl.implies g h
  | Ltl.Iff (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then Ltl.True else Ltl.iff g h
  | Ltl.Next g -> Ltl.next (simplify_once g)
  | Ltl.Eventually g ->
    (match simplify_once g with
     | Ltl.Eventually _ as inner -> inner
     | Ltl.Or (a, b) -> Ltl.disj (Ltl.eventually a) (Ltl.eventually b)
     | inner -> Ltl.eventually inner)
  | Ltl.Always g ->
    (match simplify_once g with
     | Ltl.Always _ as inner -> inner
     | Ltl.And (a, b) -> Ltl.conj (Ltl.always a) (Ltl.always b)
     | inner -> Ltl.always inner)
  | Ltl.Until (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then g else Ltl.until g h
  | Ltl.Weak_until (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then g else Ltl.weak_until g h
  | Ltl.Release (g, h) ->
    let g = simplify_once g and h = simplify_once h in
    if Ltl.equal g h then g else Ltl.release g h
