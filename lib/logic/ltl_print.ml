type syntax = Unicode | Ascii | Paper

type tokens = {
  tok_true : string;
  tok_false : string;
  tok_not : string;
  tok_and : string;
  tok_or : string;
  tok_implies : string;
  tok_iff : string;
  tok_next : string;
  tok_eventually : string;
  tok_always : string;
  tok_until : string;
  tok_weak_until : string;
  tok_release : string;
}

let unicode_tokens = {
  tok_true = "true";
  tok_false = "false";
  tok_not = "\xc2\xac";                      (* ¬ *)
  tok_and = "\xe2\x88\xa7";                  (* ∧ *)
  tok_or = "\xe2\x88\xa8";                   (* ∨ *)
  tok_implies = "\xe2\x86\x92";              (* → *)
  tok_iff = "\xe2\x86\x94";                  (* ↔ *)
  tok_next = "X";
  tok_eventually = "\xe2\x99\xa6";           (* ♦ *)
  tok_always = "\xe2\x96\xa1";               (* □ *)
  tok_until = "U";
  tok_weak_until = "W";
  tok_release = "R";
}

let ascii_tokens = {
  tok_true = "true";
  tok_false = "false";
  tok_not = "!";
  tok_and = "&&";
  tok_or = "||";
  tok_implies = "->";
  tok_iff = "<->";
  tok_next = "X";
  tok_eventually = "F";
  tok_always = "G";
  tok_until = "U";
  tok_weak_until = "W";
  tok_release = "R";
}

let paper_tokens = {
  ascii_tokens with
  tok_not = "!";
  tok_eventually = "<>";
  tok_always = "[]";
}

let tokens_of_syntax = function
  | Unicode -> unicode_tokens
  | Ascii -> ascii_tokens
  | Paper -> paper_tokens

(* Binding strength, loosest first.  Unary operators and atoms are
   tightest.  [U]/[W]/[R] sit between [||] and the unary level, and are
   treated as non-associative: nested occurrences are parenthesized. *)
let prec = function
  | Ltl.Iff _ -> 1
  | Ltl.Implies _ -> 2
  | Ltl.Or _ -> 3
  | Ltl.And _ -> 4
  | Ltl.Until _ | Ltl.Weak_until _ | Ltl.Release _ -> 5
  | Ltl.Not _ | Ltl.Next _ | Ltl.Eventually _ | Ltl.Always _ -> 6
  | Ltl.True | Ltl.False | Ltl.Prop _ -> 7

let pp ?(syntax = Ascii) ppf formula =
  let tok = tokens_of_syntax syntax in
  let rec go ctx ppf f =
    let p = prec f in
    let atomically pp_body =
      if p < ctx then Format.fprintf ppf "(%t)" pp_body else pp_body ppf
    in
    match f with
    | Ltl.True -> Format.pp_print_string ppf tok.tok_true
    | Ltl.False -> Format.pp_print_string ppf tok.tok_false
    | Ltl.Prop name -> Format.pp_print_string ppf name
    | Ltl.Not g ->
      atomically (fun ppf ->
          Format.fprintf ppf "%s%a" tok.tok_not (go (p + 1)) g)
    | Ltl.Next g -> unary ppf ctx p tok.tok_next g
    | Ltl.Eventually g -> unary ppf ctx p tok.tok_eventually g
    | Ltl.Always g -> unary ppf ctx p tok.tok_always g
    | Ltl.And (g, h) -> binary ppf ctx p tok.tok_and g h `Left
    | Ltl.Or (g, h) -> binary ppf ctx p tok.tok_or g h `Left
    | Ltl.Implies (g, h) -> binary ppf ctx p tok.tok_implies g h `Right
    | Ltl.Iff (g, h) -> binary ppf ctx p tok.tok_iff g h `Right
    | Ltl.Until (g, h) -> binary ppf ctx p tok.tok_until g h `None
    | Ltl.Weak_until (g, h) -> binary ppf ctx p tok.tok_weak_until g h `None
    | Ltl.Release (g, h) -> binary ppf ctx p tok.tok_release g h `None
  and unary ppf ctx p op g =
    let body ppf = Format.fprintf ppf "%s %a" op (go p) g in
    if p < ctx then Format.fprintf ppf "(%t)" body else body ppf
  and binary ppf ctx p op g h assoc =
    let left_ctx, right_ctx =
      match assoc with
      | `Left -> p, p + 1
      | `Right -> p + 1, p
      | `None -> p + 1, p + 1
    in
    let body ppf =
      Format.fprintf ppf "%a %s %a" (go left_ctx) g op (go right_ctx) h
    in
    if p < ctx then Format.fprintf ppf "(%t)" body else body ppf
  in
  go 0 ppf formula

(* Rendering is memoized by (syntax, formula id): reports and the
   localizer print the same requirement formulas over and over. *)

module C = Speccc_cache.Cache.Make (Speccc_cache.Cache.Int_key)

let table =
  C.create_dls ~name:"logic.print"
    ~capacity:(Speccc_cache.Cache.capacity ~name:"logic.print" ~default:4096)
    ()

let syntax_index = function Unicode -> 0 | Ascii -> 1 | Paper -> 2

let to_string ?(syntax = Ascii) formula =
  C.memo (Domain.DLS.get table)
    ((3 * Ltl.id formula) + syntax_index syntax)
    (fun () -> Format.asprintf "%a" (pp ~syntax) formula)
