(* Both syntactic scans are memoized by formula id (one table, parity
   picks the scan); only composite nodes pay the lookup, and shared
   subterms of hash-consed formulas are scanned once. *)

module C = Speccc_cache.Cache.Make (Speccc_cache.Cache.Int_key)

let table =
  C.create_dls ~name:"logic.classify"
    ~capacity:
      (Speccc_cache.Cache.capacity ~name:"logic.classify" ~default:16384)
    ()

let rec nnf_has_until formula =
  match formula with
  | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not _ -> false
  | Ltl.Until _ | Ltl.Eventually _ -> true
  | Ltl.And (f, g) | Ltl.Or (f, g) | Ltl.Release (f, g)
  | Ltl.Implies (f, g) | Ltl.Iff (f, g) | Ltl.Weak_until (f, g) ->
    C.memo (Domain.DLS.get table)
      (2 * Ltl.id formula)
      (fun () -> nnf_has_until f || nnf_has_until g)
  | Ltl.Next f | Ltl.Always f ->
    C.memo (Domain.DLS.get table)
      (2 * Ltl.id formula)
      (fun () -> nnf_has_until f)

let rec nnf_has_release formula =
  match formula with
  | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not _ -> false
  | Ltl.Release _ | Ltl.Always _ | Ltl.Weak_until _ -> true
  | Ltl.And (f, g) | Ltl.Or (f, g) | Ltl.Until (f, g)
  | Ltl.Implies (f, g) | Ltl.Iff (f, g) ->
    C.memo (Domain.DLS.get table)
      ((2 * Ltl.id formula) + 1)
      (fun () -> nnf_has_release f || nnf_has_release g)
  | Ltl.Next f | Ltl.Eventually f ->
    C.memo (Domain.DLS.get table)
      ((2 * Ltl.id formula) + 1)
      (fun () -> nnf_has_release f)

let is_syntactic_safety f = not (nnf_has_until (Nnf.of_formula f))
let is_syntactic_cosafety f = not (nnf_has_release (Nnf.of_formula f))
let has_liveness f = nnf_has_until (Nnf.of_formula f)

let bound_liveness ~bound f =
  if bound < 1 then invalid_arg "Classify.bound_liveness: bound < 1";
  (* Bounded until: h ∨ (g ∧ X (h ∨ (g ∧ X ...))), [bound] layers. *)
  let bounded_until g h =
    let rec layers k = if k = 1 then h else Ltl.disj h (Ltl.conj g (Ltl.next (layers (k - 1)))) in
    layers bound
  in
  let rec rewrite = function
    | Ltl.True -> Ltl.True
    | Ltl.False -> Ltl.False
    | (Ltl.Prop _ | Ltl.Not _) as leaf -> leaf
    | Ltl.And (g, h) -> Ltl.conj (rewrite g) (rewrite h)
    | Ltl.Or (g, h) -> Ltl.disj (rewrite g) (rewrite h)
    | Ltl.Next g -> Ltl.next (rewrite g)
    | Ltl.Eventually g -> bounded_until Ltl.tt (rewrite g)
    | Ltl.Always g -> Ltl.always (rewrite g)
    | Ltl.Until (g, h) -> bounded_until (rewrite g) (rewrite h)
    | Ltl.Release (g, h) -> Ltl.release (rewrite g) (rewrite h)
    | (Ltl.Implies _ | Ltl.Iff _ | Ltl.Weak_until _) as unexpected ->
      (* NNF never contains these. *)
      assert (not (Nnf.is_nnf unexpected));
      rewrite (Nnf.of_formula unexpected)
  in
  rewrite (Nnf.of_formula f)
