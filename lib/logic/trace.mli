(** Exact LTL semantics over ultimately periodic words (lassos).

    A lasso [u · v^ω] is given by a finite prefix [u] and a non-empty
    loop [v]; each letter is the set of propositions true at that
    instant.  Evaluation is by least/greatest fixpoint over the lasso
    positions, so [Until] and [Release] get their standard infinite-word
    semantics.  This module is the semantic reference the synthesis
    engines are tested against. *)

type letter = (string * bool) list
(** Truth assignment at one instant; propositions absent from the list
    are false. *)

type t
(** A lasso word. *)

val make : prefix:letter list -> loop:letter list -> t
(** Raises [Invalid_argument] if [loop] is empty. *)

val constant : letter -> t
(** The word repeating one letter forever. *)

val length : t -> int
(** Total number of stored positions, [|prefix| + |loop|]. *)

val loop_start : t -> int
(** Index of the first loop position ([|prefix|]). *)

val letter_at : t -> int -> letter
(** Letter at any position [i >= 0] (wrapping inside the loop). *)

val holds : t -> Ltl.t -> bool
(** [holds w f]: does [w, 0 ⊨ f]? *)

val holds_at : t -> int -> Ltl.t -> bool
(** [holds_at w i f]: does [w, i ⊨ f]?  [i] may exceed the stored
    length; it is folded into the loop. *)

val values : t -> Ltl.t -> bool array
(** Truth value of the formula at every stored position (the fixpoint
    table {!holds_at} reads).  Exposed so independent reference
    evaluators ({!Speccc_diffcheck.Refeval}) can be pitted against the
    fixpoint computation position by position. *)

val pp : Format.formatter -> t -> unit
