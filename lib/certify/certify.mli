(** Certification of realizability verdicts: every engine answer is
    re-checked against its witness with machinery independent of the
    engine that produced it, so a buggy (or fault-injected) engine
    cannot silently ship a wrong verdict.

    The witnesses and their validators:
    - [Consistent] ships a Mealy controller.  The controller is
      replayed on pseudo-random ultimately periodic input words; every
      resulting combined lasso must satisfy the specification under
      the exact trace semantics ({!Speccc_logic.Trace.holds}), and
      runtime monitoring by formula progression
      ({!Speccc_monitor.Monitor.run_trace}) must never report a
      violation.  Neither checker shares code with the game solvers.
    - [Inconsistent] proved game-theoretically ships an environment
      counterstrategy.  It is played against a panel of candidate
      controllers ({!Speccc_synthesis.Bounded.refute}); every
      resulting play must violate the specification.
    - [Inconsistent] proved by the lint floor ships an unsat core
      (requirement indices).  The core's conjunction is re-checked
      unsatisfiable with a fresh tableau call
      ({!Speccc_lint.Lint.satisfiable}).

    A witness that fails its validator {e downgrades} the verdict: the
    report becomes [Inconclusive] with a typed
    [Engine_failure ("certify", _)] in the degradation log — a wrong
    answer is never preferred over no answer. *)

type outcome =
  | Certified of string
      (** the witness checked out; the string names the method, e.g.
          ["controller replay: 32/32 lassos satisfy the spec"] *)
  | Rejected of string
      (** the witness contradicts the verdict; the string is the
          concrete evidence *)
  | No_witness of string
      (** nothing to validate: the verdict was [Inconclusive], or a
          definite verdict carried no witness *)

val certificate :
  ?budget:Speccc_runtime.Budget.t ->
  ?trials:int ->
  ?seed:int ->
  assumptions:Speccc_logic.Ltl.t list ->
  Speccc_logic.Ltl.t list ->
  Speccc_synthesis.Realizability.report ->
  outcome
(** [certificate ~assumptions guarantees report] validates the
    report's witness against the checked specification
    [(∧assumptions) → (∧guarantees)].  [trials] (default 32) random
    input lassos are generated from [seed] (default 1) by a
    deterministic linear congruential generator, so certification is
    reproducible.  [budget] governs the tableau re-checks; exhaustion
    raises [Speccc_runtime.Runtime.Interrupt] (confine with
    {!Speccc_runtime.Runtime.guard} or use {!apply}). *)

val apply :
  ?budget:Speccc_runtime.Budget.t ->
  ?trials:int ->
  ?seed:int ->
  assumptions:Speccc_logic.Ltl.t list ->
  Speccc_logic.Ltl.t list ->
  Speccc_synthesis.Realizability.report ->
  Speccc_synthesis.Realizability.report * outcome
(** Certify and enforce the downgrade rule: on [Rejected] the verdict
    becomes [Inconclusive ("certificate rejected: ...")] and a
    ["certify"] rung carrying [Engine_failure ("certify", _)] is
    appended to the degradation log; on [No_witness] over a definite
    verdict a ["certify"] rung records the gap but the verdict stands;
    on [Certified] (and on [No_witness] over an already-inconclusive
    verdict) the report is returned unchanged.  Never raises: a
    validator that runs out of budget (or fails) is confined by
    {!Speccc_runtime.Runtime.guard}; the verdict then stands
    uncertified — [No_witness] with a ["certify"] rung carrying the
    typed error — because an aborted check is evidence of nothing. *)

val pp_outcome : Format.formatter -> outcome -> unit
