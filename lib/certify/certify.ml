open Speccc_logic
open Speccc_synthesis
module Runtime = Speccc_runtime.Runtime
module Budget = Speccc_runtime.Budget
module Monitor = Speccc_monitor.Monitor

type outcome =
  | Certified of string
  | Rejected of string
  | No_witness of string

let pp_outcome ppf = function
  | Certified how -> Format.fprintf ppf "certified (%s)" how
  | Rejected why -> Format.fprintf ppf "rejected: %s" why
  | No_witness why -> Format.fprintf ppf "no witness: %s" why

(* The formula the engines actually checked: assumptions are the
   antecedent, exactly as Realizability.check builds it. *)
let spec_formula ~assumptions guarantees =
  let goal = Ltl.conj_list guarantees in
  match assumptions with
  | [] -> goal
  | _ -> Ltl.implies (Ltl.conj_list assumptions) goal

(* ---------- deterministic input-word generation ---------- *)

(* A controller certificate must not depend on the machine under test,
   so randomness is a plain LCG (Numerical Recipes constants), not the
   engines' exploration order and not [Random]. *)
let lcg state = (state * 1664525 + 1013904223) land 0x3FFFFFFF

let random_lasso ~inputs state =
  let next = ref state in
  let draw bound =
    next := lcg !next;
    !next mod bound
  in
  let letter () = Mealy.assignment_of_mask inputs (draw (1 lsl List.length inputs)) in
  let letters n = List.init n (fun _ -> letter ()) in
  let prefix = letters (draw 3) in
  let loop = letters (1 + draw 3) in
  ((prefix, loop), !next)

(* ---------- controller replay ---------- *)

let check_controller ?budget ~trials ~seed ~spec machine =
  let monitor_rejects trace =
    match Monitor.run_trace (Monitor.create spec) trace with
    | Monitor.Violated at -> Some at
    | Monitor.Satisfied _ | Monitor.Running _ -> None
  in
  let rec go i state =
    Option.iter (fun b -> Budget.checkpoint b ~stage:"certify") budget;
    if i >= trials then
      Certified
        (Printf.sprintf "controller replay: %d/%d input lassos satisfy the spec"
           trials trials)
    else
      let (prefix, loop), state = random_lasso ~inputs:machine.Mealy.inputs state in
      let trace = Mealy.lasso machine ~prefix ~loop in
      if not (Trace.holds trace spec) then
        Rejected
          (Format.asprintf
             "controller violates the spec on input lasso %d/%d: %a" (i + 1)
             trials Trace.pp trace)
      else
        match monitor_rejects trace with
        | Some at ->
          Rejected
            (Printf.sprintf
               "progression monitor reports a violation at step %d of replay %d"
               at (i + 1))
        | None -> go (i + 1) state
  in
  go 0 seed

(* ---------- counterstrategy validation ---------- *)

(* A sound counterstrategy beats EVERY controller, so it must beat each
   member of a fixed candidate panel: the all-low and all-high constant
   machines plus an echo machine that copies input bits onto outputs.
   Any play that ends up satisfying the spec convicts the witness. *)
let candidate_panel ~inputs ~outputs =
  let constant mask =
    {
      Mealy.inputs;
      outputs;
      num_states = 1;
      initial = 0;
      step = (fun _ _ -> (mask, 0));
    }
  in
  let width = List.length outputs in
  let echo =
    {
      Mealy.inputs;
      outputs;
      num_states = 1;
      initial = 0;
      step = (fun _ input -> (input land ((1 lsl width) - 1), 0));
    }
  in
  [ ("all-low", constant 0); ("all-high", constant ((1 lsl width) - 1));
    ("echo", echo) ]

let check_counterstrategy ?budget ~spec cs =
  let inputs = cs.Bounded.cs_inputs and outputs = cs.Bounded.cs_outputs in
  let rec go = function
    | [] ->
      Certified
        "counterstrategy defeats the whole candidate-controller panel"
    | (name, candidate) :: rest ->
      Option.iter (fun b -> Budget.checkpoint b ~stage:"certify") budget;
      (match Bounded.refute cs candidate with
       | trace ->
         if Trace.holds trace spec then
           Rejected
             (Format.asprintf
                "play against the %s controller satisfies the spec: %a" name
                Trace.pp trace)
         else go rest
       | exception Invalid_argument msg ->
         Rejected
           (Printf.sprintf "counterstrategy cannot be played (%s)" msg))
  in
  go (candidate_panel ~inputs ~outputs)

(* ---------- unsat-core re-check ---------- *)

let check_core ?budget ~assumptions ~formulas core =
  let n = List.length formulas in
  match List.find_opt (fun i -> i < 0 || i >= n) core with
  | Some i ->
    Rejected
      (Printf.sprintf "core names requirement %d of a %d-requirement document"
         i n)
  | None ->
    (* The lint floor's claim: the core requirements alone admit no
       behaviour (under the environment assumptions).  Re-derive it
       with a fresh tableau. *)
    let conjunction =
      Ltl.conj_list
        (assumptions @ List.map (fun i -> List.nth formulas i) core)
    in
    (match Speccc_lint.Lint.satisfiable ?budget conjunction with
     | None ->
       Certified
         (Printf.sprintf
            "fresh tableau confirms the %d-requirement core is unsatisfiable"
            (List.length core))
     | Some trace ->
       Rejected
         (Format.asprintf "the claimed unsat core has a model: %a" Trace.pp
            trace))

(* ---------- entry points ---------- *)

let certificate ?budget ?(trials = 32) ?(seed = 1) ~assumptions guarantees
    (report : Realizability.report) =
  let spec = spec_formula ~assumptions guarantees in
  match report.Realizability.verdict with
  | Realizability.Inconclusive _ ->
    No_witness "verdict is inconclusive; there is nothing to certify"
  | Realizability.Consistent ->
    (match report.Realizability.controller with
     | None -> No_witness "engine reported Consistent without a controller"
     | Some machine -> check_controller ?budget ~trials ~seed ~spec machine)
  | Realizability.Inconsistent ->
    (match report.Realizability.unsat_core, report.Realizability.counterstrategy
     with
     | Some core, _ -> check_core ?budget ~assumptions ~formulas:guarantees core
     | None, Some cs -> check_counterstrategy ?budget ~spec cs
     | None, None ->
       No_witness "engine reported Inconsistent without a witness")

let certify_rung ~wall outcome error =
  {
    Realizability.rung_engine = "certify";
    rung_outcome = outcome;
    rung_error = error;
    rung_wall = wall;
  }

let apply ?budget ?trials ?seed ~assumptions guarantees
    (report : Realizability.report) =
  let started = Unix.gettimeofday () in
  let result =
    Runtime.guard ~stage:"certify" (fun () ->
        certificate ?budget ?trials ?seed ~assumptions guarantees report)
  in
  let wall = Unix.gettimeofday () -. started in
  match result with
  | Ok (Certified _ as outcome) -> (report, outcome)
  | Ok (No_witness why as outcome) ->
    (match report.Realizability.verdict with
     | Realizability.Inconclusive _ -> (report, outcome)
     | Realizability.Consistent | Realizability.Inconsistent ->
       ( {
           report with
           Realizability.degradation =
             report.Realizability.degradation
             @ [ certify_rung ~wall ("uncertified: " ^ why) None ];
         },
         outcome ))
  | Ok (Rejected why as outcome) ->
    let error = Runtime.Engine_failure ("certify", why) in
    ( {
        report with
        Realizability.verdict =
          Realizability.Inconclusive ("certificate rejected: " ^ why);
        degradation =
          report.Realizability.degradation
          @ [ certify_rung ~wall ("certificate rejected: " ^ why) (Some error) ];
      },
      outcome )
  | Error error ->
    let why = Runtime.to_string error in
    ( {
        report with
        Realizability.degradation =
          report.Realizability.degradation
          @ [ certify_rung ~wall ("certification aborted: " ^ why) (Some error) ];
      },
      No_witness ("certification aborted: " ^ why) )
