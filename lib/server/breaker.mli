(** Per-engine-rung circuit breaker for the serve mode.

    The fallback ladder survives a broken rung per-request; the
    breaker amortizes the failure cost across requests.  States:

    - {b closed} — requests use the rung; [threshold] {e consecutive}
      [Engine_failure]s open it (any success resets the count);
    - {b open} — the serve mode skips the rung
      ([Pipeline.options.skip_engines]) until [cooldown] seconds pass;
    - {b half-open} — the first {!should_skip} after the cooldown
      admits exactly one probe request (concurrent requests keep
      skipping); the probe's success closes the breaker, its failure
      re-opens it for another cooldown.

    Only [Engine_failure] counts as failure: resource exhaustion means
    the budget was short, not that the rung is broken.  All operations
    are mutex-protected — workers on different domains share one
    breaker per rung. *)

type t

val create : rung:string -> threshold:int -> cooldown:float -> t
(** [threshold] is floored at 1, [cooldown] at 0 seconds. *)

val rung : t -> string

val should_skip : t -> now:float -> bool
(** [false] = use the rung.  An open breaker past its cooldown flips
    to half-open and admits this one caller as the probe. *)

val record_success : t -> unit
(** The rung produced a result (even an inconclusive one): close. *)

val record_failure : t -> now:float -> unit
(** The rung raised [Engine_failure]: advance toward / back to open. *)

val reset : t -> unit
(** Force the breaker back to closed with a zero failure count.  The
    shard router calls this when it respawns a crashed worker: the
    replacement process has fresh engines, so it must not inherit the
    phantom open/half-open state its predecessor earned. *)

val failures : t -> int
(** Consecutive failures recorded so far while closed; [threshold]
    when open or half-open — health-report rendering. *)

val state_name : t -> string
(** ["closed"], ["open"] or ["half-open"] — health-report rendering. *)

val opens : t -> int
(** Times the breaker has opened since creation. *)
