(* A small, total JSON reader/writer for the serve-mode protocol.

   The repo deliberately carries no JSON dependency; the harness's
   journal only ever re-reads lines it wrote itself, but the server
   parses *client* input, which deserves a real recursive-descent
   parser: every malformed request must come back as a typed
   [bad_request] response, never an exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

type cursor = { text : string; mutable pos : int }

let error cursor message =
  raise (Bad (Printf.sprintf "at byte %d: %s" cursor.pos message))

let peek cursor =
  if cursor.pos < String.length cursor.text then Some cursor.text.[cursor.pos]
  else None

let advance cursor = cursor.pos <- cursor.pos + 1

let rec skip_ws cursor =
  match peek cursor with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cursor;
    skip_ws cursor
  | Some _ | None -> ()

let expect cursor c =
  match peek cursor with
  | Some got when got = c -> advance cursor
  | Some got -> error cursor (Printf.sprintf "expected %C, got %C" c got)
  | None -> error cursor (Printf.sprintf "expected %C, got end of input" c)

let literal cursor word value =
  let n = String.length word in
  if
    cursor.pos + n <= String.length cursor.text
    && String.sub cursor.text cursor.pos n = word
  then begin
    cursor.pos <- cursor.pos + n;
    value
  end
  else error cursor (Printf.sprintf "expected %s" word)

let parse_string cursor =
  expect cursor '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cursor with
    | None -> error cursor "unterminated string"
    | Some '"' -> advance cursor
    | Some '\\' ->
      advance cursor;
      (match peek cursor with
       | None -> error cursor "unterminated escape"
       | Some c ->
         advance cursor;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if cursor.pos + 4 > String.length cursor.text then
              error cursor "truncated \\u escape";
            let hex = String.sub cursor.text cursor.pos 4 in
            cursor.pos <- cursor.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
             | None -> error cursor "bad \\u escape"
             | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
             | Some code when code < 0x800 ->
               (* 2-byte UTF-8 *)
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             | Some code ->
               (* 3-byte UTF-8 (surrogate pairs land here as-is) *)
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf
                 (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
          | c -> error cursor (Printf.sprintf "bad escape \\%C" c));
         go ())
    | Some c ->
      advance cursor;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cursor =
  let start = cursor.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cursor with Some c -> numeric c | None -> false) do
    advance cursor
  done;
  let s = String.sub cursor.text start (cursor.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error cursor (Printf.sprintf "bad number %S" s)

let rec parse_value cursor =
  skip_ws cursor;
  match peek cursor with
  | None -> error cursor "unexpected end of input"
  | Some '"' -> Str (parse_string cursor)
  | Some '{' -> parse_object cursor
  | Some '[' -> parse_array cursor
  | Some 't' -> literal cursor "true" (Bool true)
  | Some 'f' -> literal cursor "false" (Bool false)
  | Some 'n' -> literal cursor "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number cursor)
  | Some c -> error cursor (Printf.sprintf "unexpected %C" c)

and parse_object cursor =
  expect cursor '{';
  skip_ws cursor;
  if peek cursor = Some '}' then begin
    advance cursor;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec member () =
      skip_ws cursor;
      let key = parse_string cursor in
      skip_ws cursor;
      expect cursor ':';
      let value = parse_value cursor in
      fields := (key, value) :: !fields;
      skip_ws cursor;
      match peek cursor with
      | Some ',' ->
        advance cursor;
        member ()
      | Some '}' -> advance cursor
      | _ -> error cursor "expected ',' or '}'"
    in
    member ();
    Obj (List.rev !fields)
  end

and parse_array cursor =
  expect cursor '[';
  skip_ws cursor;
  if peek cursor = Some ']' then begin
    advance cursor;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec element () =
      let value = parse_value cursor in
      items := value :: !items;
      skip_ws cursor;
      match peek cursor with
      | Some ',' ->
        advance cursor;
        element ()
      | Some ']' -> advance cursor
      | _ -> error cursor "expected ',' or ']'"
    in
    element ();
    Arr (List.rev !items)
  end

let parse text =
  let cursor = { text; pos = 0 } in
  match parse_value cursor with
  | value ->
    skip_ws cursor;
    if cursor.pos < String.length text then
      Error (Printf.sprintf "trailing garbage at byte %d" cursor.pos)
    else Ok value
  | exception Bad message -> Error message

(* ---------- printing ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> number_to_string f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v)
           fields)
    ^ "}"

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let int_ = function Num f -> Some (int_of_float f) | _ -> None

let str_member key json = Option.bind (member key json) str
let num_member key json = Option.bind (member key json) num
let int_member key json = Option.bind (member key json) int_
