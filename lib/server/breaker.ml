(* Per-engine-rung circuit breaker.

   The fallback ladder already survives a broken rung — every request
   pays the rung's failure cost, then falls through.  The breaker
   amortizes that cost across requests: after [threshold] consecutive
   [Engine_failure]s on a rung the breaker opens and the serve mode
   skips the rung outright (via [Pipeline.options.skip_engines]) for
   [cooldown] seconds, after which a single probe request is let
   through (half-open).  The probe's outcome decides: success closes
   the breaker, failure re-opens it for another cooldown.

   State is shared by every worker domain, hence the mutex.  Only
   [Engine_failure] feeds the failure count — resource exhaustion
   (timeout, fuel, cancellation) says the *budget* was short, not that
   the rung is broken. *)

type state =
  | Closed of int       (* consecutive failures seen so far *)
  | Open of float       (* absolute time the cooldown ends *)
  | Half_open           (* one probe in flight *)

type t = {
  rung : string;
  threshold : int;
  cooldown : float;
  lock : Mutex.t;
  mutable state : state;
  mutable opens : int;
}

let create ~rung ~threshold ~cooldown =
  {
    rung;
    threshold = max 1 threshold;
    cooldown = Float.max 0. cooldown;
    lock = Mutex.create ();
    state = Closed 0;
    opens = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rung t = t.rung

let should_skip t ~now =
  locked t (fun () ->
      match t.state with
      | Closed _ -> false
      | Open until when now >= until ->
        (* this caller becomes the probe; concurrent requests keep
           skipping until the probe reports *)
        t.state <- Half_open;
        false
      | Open _ -> true
      | Half_open -> true)

let record_success t =
  locked t (fun () -> t.state <- Closed 0)

let record_failure t ~now =
  locked t (fun () ->
      match t.state with
      | Closed n when n + 1 >= t.threshold ->
        t.state <- Open (now +. t.cooldown);
        t.opens <- t.opens + 1
      | Closed n -> t.state <- Closed (n + 1)
      | Half_open ->
        t.state <- Open (now +. t.cooldown);
        t.opens <- t.opens + 1
      | Open _ -> ())

let reset t =
  locked t (fun () -> t.state <- Closed 0)

let failures t =
  locked t (fun () -> match t.state with Closed n -> n | Open _ | Half_open -> t.threshold)

let state_name t =
  locked t (fun () ->
      match t.state with
      | Closed _ -> "closed"
      | Open _ -> "open"
      | Half_open -> "half-open")

let opens t = locked t (fun () -> t.opens)
