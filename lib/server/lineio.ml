type t = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  partial : Buffer.t;
  lines : string Queue.t;
  mutable eof : bool;
}

let create fd =
  {
    fd;
    chunk = Bytes.create 8192;
    partial = Buffer.create 256;
    lines = Queue.create ();
    eof = false;
  }

let eof t = t.eof

let rec next_line ?deadline t ~stop =
  match Queue.take_opt t.lines with
  | Some line -> Some line
  | None ->
    if t.eof then
      if Buffer.length t.partial > 0 then begin
        let line = Buffer.contents t.partial in
        Buffer.clear t.partial;
        Some line
      end
      else None
    else if stop () then None
    else if
      match deadline with
      | Some d -> Unix.gettimeofday () >= d
      | None -> false
    then None
    else begin
      (match Unix.select [ t.fd ] [] [] 0.1 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ ->
         (match Speccc_runtime.Eintr.read t.fd t.chunk 0 (Bytes.length t.chunk) with
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            t.eof <- true
          | 0 -> t.eof <- true
          | n ->
            for i = 0 to n - 1 do
              match Bytes.get t.chunk i with
              | '\n' ->
                Queue.add (Buffer.contents t.partial) t.lines;
                Buffer.clear t.partial
              | c -> Buffer.add_char t.partial c
            done));
      next_line ?deadline t ~stop
    end
