(** Minimal JSON for the serve-mode JSONL protocol.

    The repo carries no JSON dependency; the harness journal only ever
    re-reads lines it wrote itself, but the server parses {e client}
    input, so it gets a real recursive-descent parser: malformed
    requests become [Error _] (and a typed [bad_request] response),
    never an exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace is an error.
    [\u] escapes are decoded to UTF-8 (surrogate pairs are kept as two
    3-byte sequences — good enough for a line protocol). *)

val to_string : t -> string
(** Compact single-line rendering — safe to embed in JSONL. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

(** {2 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int_ : t -> int option
val str_member : string -> t -> string option
val num_member : string -> t -> float option
val int_member : string -> t -> int option
