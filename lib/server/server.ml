(* Supervised service mode: a coordinator thread reads JSONL requests,
   a pool of worker domains checks them, and a wall-clock watchdog
   guarantees every request is answered even when an engine wedges
   between budget checkpoints.

   The supervision ladder, from mildest to harshest:

   1. cooperative cancellation — the watchdog trips the request's
      token at its deadline; a well-behaved engine dies at its next
      budget poll and the worker itself answers [unknown];
   2. hard preemption — if the engine has not stopped [grace] seconds
      later it is presumed stuck between checkpoints.  The watchdog
      answers the request on the worker's behalf (exactly-once via a
      CAS on the job's [responded] flag), marks the job abandoned, and
      spawns a replacement domain.  OCaml domains cannot be killed, so
      the stuck worker is retired in place: when (if) it wakes it sees
      the abandoned flag, skips the response it lost, and exits its
      loop instead of taking new work.  A fresh domain means fresh
      domain-local caches — no state from the wedged computation
      survives.

   Around the pool: a bounded queue gives backpressure (the reader
   blocks) and load-shedding (typed [overloaded] response past the
   high-water mark); per-engine-rung circuit breakers skip a rung that
   keeps raising [Engine_failure]; and drain (EOF, shutdown request,
   or the caller's [stop] flag, which the CLI wires to SIGTERM/SIGINT)
   finishes in-flight work before returning. *)

open Speccc_runtime
module Document = Speccc_core.Document
module Pipeline = Speccc_core.Pipeline
module Harness = Speccc_harness.Harness
module Realizability = Speccc_synthesis.Realizability
module Cache = Speccc_cache.Cache
module Ltl = Speccc_logic.Ltl
module Store = Speccc_store.Store

type config = {
  harness : Harness.config;
  workers : int;
  queue_capacity : int;
  high_water : int option;
  deadline : float;
  grace : float;
  watchdog_poll : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  drain_wait : float;
  store : Store.t option;
}

let default_config () =
  {
    harness = Harness.default_config ();
    workers = 2;
    queue_capacity = 64;
    high_water = Some 64;
    deadline = 5.0;
    grace = 1.0;
    watchdog_poll = 0.01;
    breaker_threshold = 3;
    breaker_cooldown = 5.0;
    drain_wait = 2.0;
    store = None;
  }

(* Wire the persistent verdict store into the harness hooks: lookups
   and puts key on content identity salted with the option fields that
   change the checked formulas.  Per-request overrides (fuel, deadline,
   skipped rungs) never touch the salt — they affect whether a definite
   verdict is reached, not which one is true. *)
let harness_with_store config =
  match config.store with
  | None -> config.harness
  | Some store ->
    let salt = Store.salt_of_options config.harness.Harness.options in
    { config.harness with
      Harness.store_find =
        Some (fun doc -> Store.find store (Store.key ~salt doc));
      store_put =
        Some (fun doc result -> Store.put store ~key:(Store.key ~salt doc) result) }

type stats = {
  served : int;
  shed : int;
  bad_requests : int;
  watchdog_trips : int;
  escalations : int;
  restarts : int;
  leaked_workers : int;
  max_queue_depth : int;
  preempted : int;   (** requests answered by the watchdog with a partial verdict *)
  resumed : int;     (** checks that warm-started from a saved snapshot *)
  breakers : (string * string) list;
}

(* ---------- jobs and the pool ---------- *)

type job = {
  id : Jsonl.t;                 (* echoed verbatim in the response *)
  key : string;                 (* journal/doc key *)
  document : (Document.t, string) result;
  fuel : int option;
  deadline : float;
  responded : bool Atomic.t;
  abandoned : bool Atomic.t;
  snapshot : Snapshot.slot;     (* anytime progress for THIS job *)
  snap_key : string option;     (* content key for the snapshot tables *)
}

type slot = {
  mutable domain : unit Domain.t option;
  finished : bool Atomic.t;
  mutable zombie : bool;        (* escalated past; retired in place *)
  mutable preempted : int;      (* jobs the watchdog answered for this worker *)
  mutable resumed : int;        (* jobs this worker warm-started from a snapshot *)
}

type pool = {
  config : config;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable closed : bool;
  mutable shutdown : bool;
  mutable max_depth : int;
  mutable served : int;
  mutable shed : int;
  mutable bad : int;
  mutable restarts : int;
  mutable next_wid : int;
  workers : (int, slot) Hashtbl.t;
  (* last published frontier per content key: armed into the next
     request for the same document so it resumes instead of
     cold-starting.  The store (when configured) persists the same
     snapshots across process lifetimes. *)
  snapshots : (string, Snapshot.t) Hashtbl.t;
  watchdog : Watchdog.t;
  breakers : Breaker.t list;
  out_lock : Mutex.t;
  mutable output : out_channel;
  journal_lock : Mutex.t;
}

let locked pool f =
  Mutex.lock pool.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.lock) f

let shutdown_requested pool = locked pool (fun () -> pool.shutdown)

(* ---------- queue: backpressure and shedding ---------- *)

let enqueue pool job =
  Mutex.lock pool.lock;
  let shed_at =
    match pool.config.high_water with
    | Some hw -> Some (min hw pool.config.queue_capacity)
    | None -> None
  in
  let rec admit () =
    let depth = Queue.length pool.queue in
    match shed_at with
    | Some hw when depth >= hw -> `Shed depth
    | _ ->
      if depth >= pool.config.queue_capacity then begin
        (* backpressure: the reader blocks until a worker dequeues *)
        Condition.wait pool.nonfull pool.lock;
        admit ()
      end
      else begin
        Queue.push job pool.queue;
        if depth + 1 > pool.max_depth then pool.max_depth <- depth + 1;
        Condition.signal pool.nonempty;
        `Enqueued
      end
  in
  let decision = admit () in
  (match decision with `Shed _ -> pool.shed <- pool.shed + 1 | `Enqueued -> ());
  Mutex.unlock pool.lock;
  decision

let dequeue pool =
  Mutex.lock pool.lock;
  let rec wait () =
    if not (Queue.is_empty pool.queue) then begin
      let job = Queue.pop pool.queue in
      Condition.broadcast pool.nonfull;
      Mutex.unlock pool.lock;
      Some job
    end
    else if pool.closed then begin
      Mutex.unlock pool.lock;
      None
    end
    else begin
      Condition.wait pool.nonempty pool.lock;
      wait ()
    end
  in
  wait ()

(* ---------- responses ---------- *)

let response_line job result =
  (* the verdict body is exactly the journal schema; splice the echoed
     request id in front of it *)
  let body = Harness.journal_line result in
  "{\"id\":" ^ Jsonl.to_string job.id ^ ","
  ^ String.sub body 1 (String.length body - 1)

let server_write =
  Fault.Checkpoint.register "server.write"
    "serve mode, as a response line is written to the client (a Delay \
     stalls the write under the output lock; a raising trigger is \
     absorbed like a vanished client — the journal still has the \
     verdict)"

let write_line pool line =
  Mutex.lock pool.out_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.out_lock)
    (fun () ->
       Fault.in_scope server_write @@ fun () ->
       try
         Fault.hit server_write;
         Fault.io_event "server.write";
         output_string pool.output line;
         output_char pool.output '\n';
         flush pool.output
       with Sys_error _ | Unix.Unix_error _ | Runtime.Interrupt _ ->
         (* client went away (or an injected crash says it did); the
            journal still has the verdict *)
         ())

let failed_result job ~wall error =
  {
    Harness.doc = job.key;
    verdict = Harness.Failed (Runtime.to_string error);
    engine = "none";
    attempts = 1;
    wall;
    detail = Runtime.to_string error;
    fresh = true;
    degradation = [];
    progress = None;
  }

(* The watchdog's answer for a request that blew its deadline — a
   typed partial verdict: [unknown] with the victim's last published
   progress frontier attached, so the client sees how far the check
   got (and that a retry will resume there) instead of a bare
   timeout. *)
let watchdog_result job ~wall =
  let error =
    Runtime.Degraded
      ( "watchdog",
        Runtime.Timeout (Printf.sprintf "request deadline %gs" job.deadline) )
  in
  {
    Harness.doc = job.key;
    verdict = Harness.Unknown;
    engine = "watchdog";
    attempts = 1;
    wall;
    detail = Runtime.to_string error;
    fresh = true;
    degradation = [];
    progress = Snapshot.latest job.snapshot;
  }

(* Persist a preempted job's final frontier: the in-memory table feeds
   the next request for the same document; the store (when configured)
   survives worker respawns and process restarts. *)
let save_snapshot pool job =
  match (Snapshot.latest job.snapshot, job.snap_key) with
  | Some snap, Some key ->
    locked pool (fun () -> Hashtbl.replace pool.snapshots key snap);
    (match pool.config.store with
     | Some store -> (try Store.put_snapshot store ~key snap with _ -> ())
     | None -> ())
  | _ -> ()

let drop_snapshot pool job =
  match job.snap_key with
  | Some key -> locked pool (fun () -> Hashtbl.remove pool.snapshots key)
  | None -> ()

(* Exactly-once: the worker finishing late and the watchdog escalating
   race on [job.responded]; the CAS winner writes the response line
   and the journal entry. *)
let respond pool job result =
  if Atomic.compare_and_set job.responded false true then begin
    write_line pool (response_line job result);
    (match pool.config.harness.Harness.journal with
     | Some path ->
       Mutex.lock pool.journal_lock;
       Fun.protect
         ~finally:(fun () -> Mutex.unlock pool.journal_lock)
         (fun () ->
            (* The response is already on the wire: a journal I/O
               failure (or an injected crash at the journal.append
               checkpoint) must cost the journal line, never the
               worker or the watchdog thread performing this call. *)
            try Harness.journal_append path result
            with Sys_error _ | Unix.Unix_error _ | Runtime.Interrupt _ -> ())
     | None -> ());
    locked pool (fun () -> pool.served <- pool.served + 1)
  end

(* ---------- circuit breakers ---------- *)

let skipped_rung rung =
  String.length rung.Realizability.rung_outcome >= 7
  && String.sub rung.Realizability.rung_outcome 0 7 = "skipped"

let record_breakers pool result =
  let now = Unix.gettimeofday () in
  List.iter
    (fun breaker ->
       let name = Breaker.rung breaker in
       List.iter
         (fun rung ->
            if rung.Realizability.rung_engine = name && not (skipped_rung rung)
            then
              match rung.Realizability.rung_error with
              | Some (Runtime.Engine_failure _) ->
                Breaker.record_failure breaker ~now
              | Some _ ->
                (* resource exhaustion indicts the budget, not the rung *)
                ()
              | None ->
                (* the rung ran to an inconclusive end: it works *)
                Breaker.record_success breaker)
         result.Harness.degradation;
       if result.Harness.engine = name then Breaker.record_success breaker)
    pool.breakers

let open_rungs pool =
  let now = Unix.gettimeofday () in
  List.filter_map
    (fun b -> if Breaker.should_skip b ~now then Some (Breaker.rung b) else None)
    pool.breakers

(* ---------- workers ---------- *)

let rec worker_loop pool wid =
  match dequeue pool with
  | None -> ()
  | Some job -> if run_job pool wid job then worker_loop pool wid

and run_job pool wid job =
  let start = Unix.gettimeofday () in
  match job.document with
  | Error message ->
    respond pool job
      (failed_result job ~wall:0.
         (Runtime.Invalid_input { stage = "server"; message; line = None }));
    true
  | Ok document ->
    let token = Cancellation.create () in
    let skip = open_rungs pool in
    let grace = Float.min pool.config.grace job.deadline in
    let wjob =
      Watchdog.watch pool.watchdog ~deadline:job.deadline ~grace ~cancel:token
        ~on_escalate:(fun () -> escalate pool wid job start)
    in
    let harness =
      let base = pool.config.harness in
      let options =
        { base.Harness.options with
          Pipeline.cancel = Some token;
          deadline = Some job.deadline;
          fuel =
            (match job.fuel with
             | Some _ as f -> f
             | None -> base.Harness.options.Pipeline.fuel);
          skip_engines = skip;
          snapshot = Some job.snapshot }
      in
      { base with Harness.options; journal = None; resume = false; jobs = 1 }
    in
    let result =
      (* drill point: a [Delay] injected here models an engine stalled
         between budget checkpoints — the non-cooperative case only
         the watchdog can answer *)
      match
        Runtime.guard ~stage:"server" (fun () ->
            Fault.hit Fault.Checkpoint.server_request)
      with
      | Error error ->
        failed_result job ~wall:(Unix.gettimeofday () -. start) error
      | Ok () -> Harness.check_one harness job.key document
    in
    let my_slot () = locked pool (fun () -> Hashtbl.find_opt pool.workers wid) in
    if Snapshot.resumed_count job.snapshot > 0 then
      (match my_slot () with
       | Some slot -> slot.resumed <- slot.resumed + 1
       | None -> ());
    (match Watchdog.complete pool.watchdog wjob with
     | `Ok ->
       record_breakers pool result;
       (match result.Harness.verdict with
        | Harness.Consistent | Harness.Inconsistent ->
          (* the definite verdict supersedes any saved progress (the
             store's put does the same for its snapshot record) *)
          drop_snapshot pool job
        | Harness.Unknown | Harness.Failed _ -> save_snapshot pool job);
       respond pool job result
     | `Tripped ->
       (* the deadline passed: the contract is [unknown], whatever the
          late computation came back with — but the progress frontier
          survives for the retry *)
       (match my_slot () with
        | Some slot -> slot.preempted <- slot.preempted + 1
        | None -> ());
       save_snapshot pool job;
       respond pool job (watchdog_result job ~wall:(Unix.gettimeofday () -. start))
     | `Escalated ->
       (* the watchdog already answered (and counted the preemption)
          on this worker's behalf *)
       ());
    not (Atomic.get job.abandoned)

and escalate pool wid job start =
  (* watchdog thread: the worker is stuck between checkpoints.  Answer
     on its behalf — keeping whatever frontier the victim published
     before wedging — retire it in place, bring up a replacement. *)
  Atomic.set job.abandoned true;
  save_snapshot pool job;
  respond pool job (watchdog_result job ~wall:(Unix.gettimeofday () -. start));
  locked pool (fun () ->
      pool.restarts <- pool.restarts + 1;
      (match Hashtbl.find_opt pool.workers wid with
       | Some slot ->
         slot.zombie <- true;
         slot.preempted <- slot.preempted + 1
       | None -> ());
      spawn_locked pool)

and spawn_locked pool =
  let wid = pool.next_wid in
  pool.next_wid <- wid + 1;
  let slot =
    { domain = None; finished = Atomic.make false; zombie = false;
      preempted = 0; resumed = 0 }
  in
  Hashtbl.replace pool.workers wid slot;
  let domain =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> Atomic.set slot.finished true)
          (fun () ->
             match worker_loop pool wid with
             | () -> ()
             | exception _ ->
               (* a worker must never take the pool down; the job that
                  killed it is answered by the watchdog when its
                  deadline passes *)
               ()))
  in
  slot.domain <- Some domain

(* ---------- request handling ---------- *)

let error_response pool ?(id = Jsonl.Null) kind detail =
  write_line pool
    (Jsonl.to_string
       (Jsonl.Obj
          [ ("id", id); ("error", Jsonl.Str kind);
            ("detail", Jsonl.Str detail) ]))

let health_response pool id =
  let depth, live, restarts, served, shed, workers, saved_snaps =
    locked pool (fun () ->
        let live =
          Hashtbl.fold
            (fun _ slot n ->
               if slot.zombie || Atomic.get slot.finished then n else n + 1)
            pool.workers 0
        in
        let workers =
          Hashtbl.fold
            (fun wid slot acc -> (wid, slot.preempted, slot.resumed) :: acc)
            pool.workers []
          |> List.sort compare
        in
        ( Queue.length pool.queue, live, pool.restarts, pool.served, pool.shed,
          workers, Hashtbl.length pool.snapshots ))
  in
  let num n = Jsonl.Num (float_of_int n) in
  let caches =
    List.map
      (fun s ->
         Jsonl.Obj
           [ ("name", Jsonl.Str s.Cache.name); ("hits", num s.Cache.hits);
             ("misses", num s.Cache.misses); ("size", num s.Cache.size) ])
      (Cache.stats ())
  in
  let hc = Ltl.hashcons_stats () in
  let bdd =
    let c = Speccc_bdd.Bdd.counters () in
    ( "bdd",
      Jsonl.Obj
        [ ("nodes", num c.Speccc_bdd.Bdd.nodes);
          ("op_hits", num c.Speccc_bdd.Bdd.op_hits);
          ("op_misses", num c.Speccc_bdd.Bdd.op_misses);
          ("reorders", num c.Speccc_bdd.Bdd.reorders) ] )
  in
  let store_fields =
    match pool.config.store with
    | None -> []
    | Some store ->
      let s = Store.stats store in
      [ ( "store",
          Jsonl.Obj
            [ ("live", num s.Store.live);
              ("snapshots", num s.Store.snapshots);
              ("appends", num s.Store.appends);
              ("hits", num s.Store.hits); ("misses", num s.Store.misses);
              ("compactions", num s.Store.compactions);
              ("recovered_bytes", num s.Store.recovered_bytes);
              ("crc_failures", num s.Store.crc_failures);
              ("file_bytes", num s.Store.file_bytes) ] ) ]
  in
  let anytime =
    let total_p = List.fold_left (fun a (_, p, _) -> a + p) 0 workers in
    let total_r = List.fold_left (fun a (_, _, r) -> a + r) 0 workers in
    ( "anytime",
      Jsonl.Obj
        [ ("preempted", num total_p); ("resumed", num total_r);
          ("saved_snapshots", num saved_snaps);
          ( "workers",
            Jsonl.Arr
              (List.map
                 (fun (wid, p, r) ->
                    Jsonl.Obj
                      [ ("id", num wid); ("preempted", num p);
                        ("resumed", num r) ])
                 workers) ) ] )
  in
  let memory =
    let m = Memwatch.stats () in
    ( "memory",
      Jsonl.Obj
        [ ("major_words", Jsonl.Num m.Memwatch.major_words);
          ("heap_words", num m.Memwatch.heap_words);
          ("compactions", num m.Memwatch.compactions);
          ("watermark", Jsonl.Str (Memwatch.level_name m.Memwatch.watermark));
          ("soft_trips", num m.Memwatch.soft_trips);
          ("hard_trips", num m.Memwatch.hard_trips);
          ("sheds", num m.Memwatch.sheds) ] )
  in
  write_line pool
    (Jsonl.to_string
       (Jsonl.Obj
          [ ("id", id);
            ( "health",
              Jsonl.Obj
                ([ ("queue_depth", num depth); ("workers", num live);
                   ("restarts", num restarts); ("served", num served);
                   ("shed", num shed);
                   ("watchdog_trips", num (Watchdog.trips pool.watchdog));
                   ("escalations", num (Watchdog.escalations pool.watchdog));
                   ( "breakers",
                     (* full persisted breaker state, so the router can
                        carry a worker's breaker picture across its own
                        health probes and confirm a respawned worker
                        started with no phantom open rungs *)
                     Jsonl.Obj
                       (List.map
                          (fun b ->
                             ( Breaker.rung b,
                               Jsonl.Obj
                                 [ ("state", Jsonl.Str (Breaker.state_name b));
                                   ("opens", num (Breaker.opens b));
                                   ("failures", num (Breaker.failures b)) ] ))
                          pool.breakers) );
                   ("caches", Jsonl.Arr caches);
                   ( "hashcons",
                     Jsonl.Obj
                       [ ("nodes", num hc.Ltl.nodes);
                         ("hits", num hc.Ltl.hc_hits);
                         ("misses", num hc.Ltl.hc_misses) ] );
                   bdd; anytime; memory ]
                  @ store_fields) ) ]))

let handle_check pool id json =
  let request_options =
    Option.value (Jsonl.member "options" json) ~default:json
  in
  let document, key =
    match (Jsonl.str_member "doc" json, Jsonl.str_member "path" json) with
    | Some text, _ ->
      let key =
        match Jsonl.str id with
        | Some s -> s
        | None -> Jsonl.to_string id
      in
      ((try Ok (Document.parse text) with exn -> Error (Printexc.to_string exn)),
       key)
    | None, Some path ->
      ((try Ok (Document.of_file path) with
        | Sys_error message -> Error message
        | exn -> Error (Printexc.to_string exn)),
       path)
    | None, None -> (Error "request has neither \"doc\" nor \"path\"", "?")
  in
  match document with
  | Error message when key = "?" ->
    (* not even a document reference: a protocol error, not a job *)
    locked pool (fun () -> pool.bad <- pool.bad + 1);
    error_response pool ~id "bad_request" message
  | _ ->
    let snapshot = Snapshot.slot () in
    let snap_key =
      match document with
      | Ok doc ->
        let salt = Store.salt_of_options pool.config.harness.Harness.options in
        Some (Store.key ~salt doc)
      | Error _ -> None
    in
    (* warm-replay: arm the last saved frontier for this document so
       the check resumes where the preempted attempt stopped — the
       in-memory table first (this process), the store as fallback
       (across restarts) *)
    (match snap_key with
     | Some skey ->
       let saved =
         match locked pool (fun () -> Hashtbl.find_opt pool.snapshots skey) with
         | Some _ as s -> s
         | None ->
           (match pool.config.store with
            | Some store -> Store.find_snapshot store skey
            | None -> None)
       in
       (match saved with
        | Some _ -> Snapshot.set_resume snapshot saved
        | None -> ())
     | None -> ());
    let job =
      {
        id;
        key;
        document;
        fuel = Jsonl.int_member "fuel" request_options;
        deadline =
          (match Jsonl.num_member "deadline" request_options with
           | Some d when d > 0. -> d
           | _ -> pool.config.deadline);
        responded = Atomic.make false;
        abandoned = Atomic.make false;
        snapshot;
        snap_key;
      }
    in
    (match enqueue pool job with
     | `Enqueued -> ()
     | `Shed depth ->
       write_line pool
         (Jsonl.to_string
            (Jsonl.Obj
               [ ("id", id); ("error", Jsonl.Str "overloaded");
                 ("queue_depth", Jsonl.Num (float_of_int depth)) ])))

let handle_line pool line =
  let line = String.trim line in
  if line = "" then ()
  else
    match Jsonl.parse line with
    | Error message ->
      locked pool (fun () -> pool.bad <- pool.bad + 1);
      error_response pool "bad_request" message
    | Ok json ->
      let id = Option.value (Jsonl.member "id" json) ~default:Jsonl.Null in
      (match Option.value (Jsonl.str_member "cmd" json) ~default:"check" with
       | "check" -> handle_check pool id json
       | "health" -> health_response pool id
       | "shutdown" ->
         write_line pool
           (Jsonl.to_string
              (Jsonl.Obj [ ("id", id); ("ok", Jsonl.Str "draining") ]));
         locked pool (fun () -> pool.shutdown <- true)
       | other ->
         locked pool (fun () -> pool.bad <- pool.bad + 1);
         error_response pool ~id "bad_request" ("unknown cmd " ^ other))

(* ---------- line reader ---------- *)

(* Select-based polling (Lineio), never a blocking channel read, so
   the stop flag always wakes the reader. *)
let make_reader = Lineio.create
let next_line reader ~stop = Lineio.next_line reader ~stop

(* ---------- lifecycle ---------- *)

let make_pool config output =
  let config = { config with harness = harness_with_store config } in
  let pool =
    {
      config;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      closed = false;
      shutdown = false;
      max_depth = 0;
      served = 0;
      shed = 0;
      bad = 0;
      restarts = 0;
      next_wid = 0;
      workers = Hashtbl.create 16;
      snapshots = Hashtbl.create 16;
      watchdog = Watchdog.create ~poll_interval:config.watchdog_poll ();
      breakers =
        List.map
          (fun rung ->
             Breaker.create ~rung ~threshold:config.breaker_threshold
               ~cooldown:config.breaker_cooldown)
          [ "symbolic"; "explicit"; "sat" ];
      out_lock = Mutex.create ();
      output;
      journal_lock = Mutex.create ();
    }
  in
  locked pool (fun () ->
      for _ = 1 to max 1 config.workers do
        spawn_locked pool
      done);
  pool

let drain pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Condition.broadcast pool.nonfull;
  let slots = Hashtbl.fold (fun _ slot acc -> slot :: acc) pool.workers [] in
  Mutex.unlock pool.lock;
  let zombies, live = List.partition (fun slot -> slot.zombie) slots in
  (* live workers finish in-flight work plus the queued backlog *)
  List.iter (fun slot -> Option.iter Domain.join slot.domain) live;
  (* zombies cannot be joined unconditionally — they are wedged; wait
     a bounded while for the stall to end, then leak them *)
  let give_up = Unix.gettimeofday () +. pool.config.drain_wait in
  let rec wait pending =
    let done_, stuck =
      List.partition (fun slot -> Atomic.get slot.finished) pending
    in
    List.iter (fun slot -> Option.iter Domain.join slot.domain) done_;
    if stuck = [] then 0
    else if Unix.gettimeofday () >= give_up then List.length stuck
    else begin
      Thread.delay 0.01;
      wait stuck
    end
  in
  let leaked = wait zombies in
  Watchdog.stop pool.watchdog;
  leaked

let finish pool ~leaked =
  let preempted, resumed =
    Hashtbl.fold
      (fun _ slot (p, r) -> (p + slot.preempted, r + slot.resumed))
      pool.workers (0, 0)
  in
  {
    served = pool.served;
    shed = pool.shed;
    bad_requests = pool.bad;
    watchdog_trips = Watchdog.trips pool.watchdog;
    escalations = Watchdog.escalations pool.watchdog;
    restarts = pool.restarts;
    leaked_workers = leaked;
    max_queue_depth = pool.max_depth;
    preempted;
    resumed;
    breakers =
      List.map
        (fun b -> (Breaker.rung b, Breaker.state_name b))
        pool.breakers;
  }

let run ?(stop = fun () -> false) config ~input ~output =
  let pool = make_pool config output in
  let reader = make_reader input in
  let rec loop () =
    if shutdown_requested pool then ()
    else
      match
        next_line reader ~stop:(fun () -> stop () || shutdown_requested pool)
      with
      | None -> ()
      | Some line ->
        handle_line pool line;
        loop ()
  in
  loop ();
  let leaked = drain pool in
  finish pool ~leaked

let run_socket ?(stop = fun () -> false) config ~path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       Unix.bind sock (Unix.ADDR_UNIX path);
       Unix.listen sock 8;
       let pool = make_pool config stdout in
       let rec accept_loop () =
         if shutdown_requested pool || stop () then ()
         else
           match Unix.select [ sock ] [] [] 0.1 with
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
           | [], _, _ -> accept_loop ()
           | _ ->
             let conn, _ = Eintr.accept sock in
             let out = Unix.out_channel_of_descr conn in
             Mutex.lock pool.out_lock;
             pool.output <- out;
             Mutex.unlock pool.out_lock;
             let reader = make_reader conn in
             let rec session () =
               if shutdown_requested pool then ()
               else
                 match
                   next_line reader ~stop:(fun () ->
                       stop () || shutdown_requested pool)
                 with
                 | None -> ()
                 | Some line ->
                   handle_line pool line;
                   session ()
             in
             session ();
             (try flush out with Sys_error _ -> ());
             (try Unix.close conn with Unix.Unix_error _ -> ());
             accept_loop ()
       in
       accept_loop ();
       let leaked = drain pool in
       finish pool ~leaked)

let pp_stats ppf (stats : stats) =
  Format.fprintf ppf
    "@[<v>served: %d@,shed: %d@,bad requests: %d@,watchdog trips: %d@,\
     escalations: %d@,worker restarts: %d@,leaked workers: %d@,\
     max queue depth: %d@,preempted: %d@,resumed: %d@,breakers: %s@]"
    stats.served stats.shed stats.bad_requests stats.watchdog_trips
    stats.escalations stats.restarts stats.leaked_workers
    stats.max_queue_depth stats.preempted stats.resumed
    (String.concat ", "
       (List.map (fun (r, s) -> r ^ "=" ^ s) stats.breakers))
