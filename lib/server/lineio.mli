(** Stoppable line reading over a raw file descriptor.

    OCaml channels retry [EINTR] internally, so a blocking
    [input_line] cannot be woken by a signal flag.  This reader polls
    the descriptor through [Unix.select] with a short timeout instead,
    checking a caller-supplied [stop] predicate between waits — the
    serve mode wires SIGTERM/SIGINT to it, the shard router uses the
    [deadline] to bound how long it waits on a worker's response. *)

type t

val create : Unix.file_descr -> t

val next_line : ?deadline:float -> t -> stop:(unit -> bool) -> string option
(** The next newline-terminated line (without the newline), or the
    final unterminated partial line at EOF.  [None] on EOF with
    nothing buffered, when [stop] returns true between polls, or once
    [Unix.gettimeofday ()] passes [deadline].  Lines already buffered
    are returned without consulting [stop] or [deadline]. *)

val eof : t -> bool
(** The descriptor reported end-of-file (buffered lines may remain). *)
