(** Supervised service mode: long-running consistency checking behind
    a JSONL request/response protocol ([speccc serve]).

    {2 Protocol}

    One JSON object per line on the way in, one per line on the way
    out.  Requests:

    {v
    {"id":1,"doc":"R1: If the button is pressed, ...\n..."}
    {"id":"r2","path":"spec.txt","options":{"fuel":50000,"deadline":2.5}}
    {"id":3,"cmd":"health"}
    {"id":4,"cmd":"shutdown"}
    v}

    A [check] request (the default [cmd]) is answered with the
    {!Speccc_harness.Harness.journal_line} verdict schema plus the
    echoed [id]:

    {v
    {"id":1,"doc":"1","verdict":"consistent","engine":"symbolic",...}
    v}

    Error responses are typed: [{"id":..,"error":"overloaded",
    "queue_depth":n}] when the queue is past its high-water mark,
    [{"id":..,"error":"bad_request","detail":..}] for malformed input.
    Every request gets exactly one response; none are dropped.

    {2 Supervision}

    A pool of worker domains checks requests.  Each request runs under
    a wall-clock watchdog with two-stage escalation: at [deadline] the
    request's cancellation token trips (a cooperative engine aborts at
    its next budget poll); at [deadline + grace] the worker is
    presumed wedged between checkpoints, so the watchdog answers
    [unknown] (detail [Degraded ("watchdog", Timeout _)]) on its
    behalf, retires the worker in place, and spawns a replacement
    domain with fresh per-domain caches.  Either way a request whose
    deadline passed is answered [unknown] within [deadline + grace]
    wall seconds ([grace] is clamped to [deadline], so within 2x the
    deadline).

    Per-engine-rung circuit {!Breaker}s skip ladder rungs that keep
    raising [Engine_failure].  Drain — EOF on the input, a [shutdown]
    request, or the [stop] flag (wired to SIGTERM/SIGINT by the CLI) —
    finishes in-flight and queued work, flushes the journal, and
    returns; wedged workers are waited on for [drain_wait] seconds,
    then leaked (reported in {!stats.leaked_workers}).

    A preempted request is not answered with a bare timeout: the
    response carries the victim's last published anytime [progress]
    frontier, the frontier is saved (in memory, and in the store when
    one is wired), and the next request for the same document warm-
    replays it — the engines resume from the saved bound instead of
    cold-starting.  See {!Speccc_runtime.Snapshot}.

    The [health] response carries the full supervision picture: queue
    depth, live workers, restart/shed/watchdog counters, per-rung
    breaker objects [{"state","opens","failures"}], an [anytime]
    object (total and per-worker [preempted]/[resumed] counters plus
    the saved-snapshot count), a [memory] object (GC counters and the
    {!Speccc_runtime.Memwatch} watermark state), cache and
    hash-consing counters, and (when a {!config.store} is wired) the
    verdict-store counters — the shard router's probe reads these to
    decide failover and to verify a respawned worker carries no
    phantom open breakers. *)

type config = {
  harness : Speccc_harness.Harness.config;
      (** per-request checking options (retries, certify, fuel
          default...).  The harness journal/resume/jobs fields are
          ignored per request; [harness.journal] names the server's
          own journal, written once per response. *)
  workers : int;             (** worker domains (floored at 1; default 2) *)
  queue_capacity : int;      (** queued requests before the reader blocks *)
  high_water : int option;
      (** shed (typed [overloaded] response) once the queue holds this
          many requests; [None] = never shed, block only *)
  deadline : float;          (** default per-request wall seconds *)
  grace : float;
      (** extra seconds after the deadline before hard preemption;
          clamped per-request to the request's deadline *)
  watchdog_poll : float;     (** watchdog polling interval, seconds *)
  breaker_threshold : int;   (** consecutive failures that open a rung *)
  breaker_cooldown : float;  (** seconds an open breaker skips its rung *)
  drain_wait : float;        (** seconds to wait on wedged workers at drain *)
  store : Speccc_store.Store.t option;
      (** persistent verdict store; when set, every request consults it
          before any engine runs and every fresh definite verdict is
          persisted to it ({!Speccc_harness.Harness.config.store_find}
          hooks, keyed by content identity salted with
          {!Speccc_store.Store.salt_of_options}).  Its counters join the
          [health] response.  Default [None]. *)
}

val default_config : unit -> config

type stats = {
  served : int;          (** responses written (checks + watchdog answers) *)
  shed : int;            (** [overloaded] responses *)
  bad_requests : int;
  watchdog_trips : int;  (** deadlines that tripped a token *)
  escalations : int;     (** hard preemptions *)
  restarts : int;        (** replacement workers spawned *)
  leaked_workers : int;  (** wedged domains still running at drain *)
  max_queue_depth : int;
  preempted : int;
      (** requests the watchdog answered with a partial verdict
          ([unknown] plus the victim's last [progress] frontier) *)
  resumed : int;
      (** checks that warm-started from a saved anytime snapshot
          instead of cold-starting *)
  breakers : (string * string) list;  (** rung, final breaker state *)
}

val run :
  ?stop:(unit -> bool) ->
  config ->
  input:Unix.file_descr ->
  output:out_channel ->
  stats
(** Serve JSONL requests from [input] until EOF, a [shutdown] request,
    or [stop] returns true (polled at least every 0.1 s; the CLI sets
    it from SIGTERM/SIGINT handlers), then drain and return.  The
    input is read with [select]-based polling, never a blocking
    channel read, so the stop flag always wakes the reader. *)

val run_socket : ?stop:(unit -> bool) -> config -> path:string -> stats
(** Like {!run} over a Unix-domain socket: bind [path] (replacing a
    stale socket file), accept one connection at a time, serve each
    until its EOF, and keep accepting until [shutdown] or [stop].
    Pool, breakers and counters persist across connections.  The
    socket file is removed on return. *)

val pp_stats : Format.formatter -> stats -> unit
