module Runtime = Speccc_runtime.Runtime

exception Malformed of Runtime.error

let malformed ~line message =
  raise (Malformed (Runtime.invalid_input ~stage:"dimacs" ~line message))

let parse text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "p"; "cnf"; vars; _clauses ] ->
        (match int_of_string_opt vars with
         | Some n when n >= 0 -> nvars := n
         | Some _ | None ->
           malformed ~line:lineno
             (Printf.sprintf "bad variable count %S in header" vars))
      | _ -> malformed ~line:lineno ("bad problem header " ^ String.escaped line)
    end
    else
      String.split_on_char ' ' line
      |> List.filter (( <> ) "")
      |> List.iter (fun token ->
          match int_of_string_opt token with
          | None -> malformed ~line:lineno ("bad literal " ^ String.escaped token)
          | Some 0 ->
            clauses := List.rev !current :: !clauses;
            current := []
          | Some lit -> current := lit :: !current)
  in
  match
    List.iteri (fun i line -> handle_line (i + 1) line) lines;
    if !current <> [] then clauses := List.rev !current :: !clauses;
    (!nvars, List.rev !clauses)
  with
  | result -> Ok result
  | exception Malformed error -> Error error

let parse_exn text =
  match parse text with
  | Ok result -> result
  | Error error -> failwith (Runtime.to_string error)

let print ppf ~nvars clauses =
  Format.fprintf ppf "p cnf %d %d@\n" nvars (List.length clauses);
  List.iter
    (fun clause ->
       List.iter (fun lit -> Format.fprintf ppf "%d " lit) clause;
       Format.fprintf ppf "0@\n")
    clauses
