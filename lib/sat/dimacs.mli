(** DIMACS CNF reading and writing (for interoperability and for
    debugging the solver against external tools). *)

val parse :
  string -> (int * int list list, Speccc_runtime.Runtime.error) result
(** [parse text] returns [Ok (num_vars, clauses)], or
    [Error (Invalid_input _)] carrying the 1-based source line of the
    first malformed header or literal.  Never raises. *)

val parse_exn : string -> int * int list list
(** {!parse}, raising [Failure] with the rendered error instead.  For
    quick scripts and tests on known-good input. *)

val print : Format.formatter -> nvars:int -> int list list -> unit
