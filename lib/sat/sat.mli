(** A CDCL (conflict-driven clause learning) SAT solver.

    Literals follow the DIMACS convention: variables are positive
    integers [1, 2, ...]; a negative literal [-v] is the negation of
    variable [v]; [0] is invalid.

    The solver is incremental: clauses can be added between [solve]
    calls, and each call may carry assumption literals (checked as
    temporary unit decisions, as in MiniSat).

    Implementation: two-watched-literal propagation, first-UIP clause
    learning, VSIDS-style activity with decay, geometric restarts. *)

type t

type outcome =
  | Sat of bool array
      (** Model indexed by variable (index 0 unused). *)
  | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate the next fresh variable. *)

val ensure_vars : t -> int -> unit
(** Make sure variables [1..n] exist. *)

val add_clause : t -> int list -> unit
(** Add a clause.  The empty clause makes the instance trivially
    unsatisfiable.  Raises [Invalid_argument] on literal [0]. *)

val solve :
  ?budget:Speccc_runtime.Budget.t -> ?assumptions:int list -> t -> outcome
(** When [budget] is given, one fuel unit is spent per decision and
    per conflict; exhaustion raises
    [Speccc_runtime.Runtime.Interrupt] out of the search (the solver
    may be left mid-search — discard it afterwards).  The fault
    checkpoint ["sat.solve"] is announced on entry. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Problem clauses (not counting learned ones). *)

val num_conflicts : t -> int
(** Total conflicts over the solver's lifetime (diagnostics). *)

val solve_clauses :
  ?budget:Speccc_runtime.Budget.t ->
  ?assumptions:int list ->
  int list list ->
  outcome
(** One-shot convenience: build a solver, add the clauses, solve. *)

type core_outcome =
  | Core_sat of bool array
      (** Model indexed by variable, as in {!outcome}. *)
  | Core_unsat of int list
      (** A subset of the given assumptions that is unsatisfiable
          together with the clauses — minimal w.r.t. removing any
          single member.  [[]] when the clauses alone are
          unsatisfiable. *)

val solve_core :
  ?budget:Speccc_runtime.Budget.t -> assumptions:int list -> t -> core_outcome
(** Like {!solve}, but an [Unsat] answer is refined into an unsat core
    over the assumption literals by deletion-based minimization (one
    incremental solve per assumption).  This is the witness surface
    the certification layer re-checks inconsistency verdicts against.
    Budget exhaustion raises [Speccc_runtime.Runtime.Interrupt] as in
    {!solve}. *)
