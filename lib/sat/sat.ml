type clause = {
  lits : int array;  (* watched literals sit at positions 0 and 1 *)
  learned : bool;
}

type t = {
  mutable nvars : int;
  mutable clauses : clause list;          (* problem clauses *)
  mutable nclauses : int;
  mutable watches : clause list array;    (* indexed by literal index *)
  mutable values : int array;             (* by var: 0 unknown / 1 / -1 *)
  mutable levels : int array;             (* by var *)
  mutable reasons : clause option array;  (* by var *)
  mutable activity : float array;         (* by var *)
  mutable polarity : bool array;          (* saved phase, by var *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lims : int list;          (* trail sizes at decisions *)
  mutable level : int;
  mutable propagate_head : int;
  mutable var_inc : float;
  mutable conflicts : int;
  mutable unsat : bool;                   (* empty clause seen *)
  seen : (int, unit) Hashtbl.t;           (* scratch for analyze *)
}

let lit_index lit = if lit > 0 then 2 * lit else (2 * -lit) + 1
let lit_var lit = abs lit

let create () = {
  nvars = 0;
  clauses = [];
  nclauses = 0;
  watches = Array.make 16 [];
  values = Array.make 8 0;
  levels = Array.make 8 0;
  reasons = Array.make 8 None;
  activity = Array.make 8 0.0;
  polarity = Array.make 8 false;
  trail = Array.make 8 0;
  trail_size = 0;
  trail_lims = [];
  level = 0;
  propagate_head = 0;
  var_inc = 1.0;
  conflicts = 0;
  unsat = false;
  seen = Hashtbl.create 64;
}

let grow_array arr len default =
  if Array.length arr >= len then arr
  else begin
    let fresh = Array.make (max len (2 * Array.length arr)) default in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

let ensure_vars solver n =
  if n > solver.nvars then begin
    solver.nvars <- n;
    solver.values <- grow_array solver.values (n + 1) 0;
    solver.levels <- grow_array solver.levels (n + 1) 0;
    solver.reasons <- grow_array solver.reasons (n + 1) None;
    solver.activity <- grow_array solver.activity (n + 1) 0.0;
    solver.polarity <- grow_array solver.polarity (n + 1) false;
    solver.trail <- grow_array solver.trail (n + 1) 0;
    solver.watches <- grow_array solver.watches (2 * (n + 1)) []
  end

let new_var solver =
  ensure_vars solver (solver.nvars + 1);
  solver.nvars

let num_vars solver = solver.nvars
let num_clauses solver = solver.nclauses
let num_conflicts solver = solver.conflicts

(* 1 if lit true, -1 if false, 0 unknown. *)
let lit_value solver lit =
  let v = solver.values.(lit_var lit) in
  if lit > 0 then v else -v

let bump_var solver v =
  solver.activity.(v) <- solver.activity.(v) +. solver.var_inc;
  if solver.activity.(v) > 1e100 then begin
    for i = 1 to solver.nvars do
      solver.activity.(i) <- solver.activity.(i) *. 1e-100
    done;
    solver.var_inc <- solver.var_inc *. 1e-100
  end

let decay_activity solver = solver.var_inc <- solver.var_inc /. 0.95

let watch solver lit clause =
  let idx = lit_index lit in
  solver.watches.(idx) <- clause :: solver.watches.(idx)

(* Put [lit] on the trail as true, with the given reason. *)
let enqueue solver lit reason =
  let v = lit_var lit in
  solver.values.(v) <- (if lit > 0 then 1 else -1);
  solver.levels.(v) <- solver.level;
  solver.reasons.(v) <- reason;
  solver.polarity.(v) <- lit > 0;
  solver.trail.(solver.trail_size) <- lit;
  solver.trail_size <- solver.trail_size + 1

exception Conflict of clause

(* Two-watched-literal unit propagation.  Returns the conflicting
   clause if any. *)
let propagate solver =
  try
    while solver.propagate_head < solver.trail_size do
      let lit = solver.trail.(solver.propagate_head) in
      solver.propagate_head <- solver.propagate_head + 1;
      let falsified = -lit in
      let idx = lit_index falsified in
      let watching = solver.watches.(idx) in
      solver.watches.(idx) <- [];
      let rec process = function
        | [] -> ()
        | clause :: rest ->
          let lits = clause.lits in
          (* Normalize: the falsified literal at position 1. *)
          if lits.(0) = falsified then begin
            lits.(0) <- lits.(1);
            lits.(1) <- falsified
          end;
          if lit_value solver lits.(0) = 1 then begin
            (* Clause already satisfied; keep watching. *)
            solver.watches.(idx) <- clause :: solver.watches.(idx);
            process rest
          end
          else begin
            (* Look for a new literal to watch. *)
            let n = Array.length lits in
            let rec find k =
              if k >= n then None
              else if lit_value solver lits.(k) <> -1 then Some k
              else find (k + 1)
            in
            match find 2 with
            | Some k ->
              lits.(1) <- lits.(k);
              lits.(k) <- falsified;
              watch solver lits.(1) clause;
              process rest
            | None ->
              (* Unit or conflicting. *)
              solver.watches.(idx) <- clause :: solver.watches.(idx);
              if lit_value solver lits.(0) = -1 then begin
                solver.watches.(idx) <-
                  List.rev_append rest solver.watches.(idx);
                raise (Conflict clause)
              end
              else begin
                enqueue solver lits.(0) (Some clause);
                process rest
              end
          end
      in
      process watching
    done;
    None
  with Conflict clause -> Some clause

let backtrack solver target_level =
  if solver.level > target_level then begin
    let keep = ref solver.trail_size in
    let rec drop_levels lims lvl =
      match lims with
      | [] -> []
      | size :: rest ->
        if lvl > target_level then begin
          keep := size;
          drop_levels rest (lvl - 1)
        end
        else lims
    in
    solver.trail_lims <- drop_levels solver.trail_lims solver.level;
    for i = !keep to solver.trail_size - 1 do
      let v = lit_var solver.trail.(i) in
      solver.values.(v) <- 0;
      solver.reasons.(v) <- None
    done;
    solver.trail_size <- !keep;
    solver.propagate_head <- !keep;
    solver.level <- target_level
  end

(* First-UIP conflict analysis.  Returns the learned clause (with the
   asserting literal first) and the backjump level. *)
let analyze solver conflict =
  Hashtbl.reset solver.seen;
  let learned = ref [] in
  let counter = ref 0 in
  let conflict_level = solver.level in
  let absorb clause =
    Array.iter
      (fun lit ->
         let v = lit_var lit in
         if (not (Hashtbl.mem solver.seen v)) && solver.levels.(v) > 0 then begin
           Hashtbl.add solver.seen v ();
           bump_var solver v;
           if solver.levels.(v) >= conflict_level then incr counter
           else learned := lit :: !learned
         end)
      clause.lits
  in
  absorb conflict;
  (* Walk the trail backwards to the first UIP. *)
  let index = ref (solver.trail_size - 1) in
  let uip = ref 0 in
  let continue_walk = ref true in
  while !continue_walk do
    (* Find the next trail literal involved in the conflict. *)
    while not (Hashtbl.mem solver.seen (lit_var solver.trail.(!index))) do
      decr index
    done;
    let lit = solver.trail.(!index) in
    let v = lit_var lit in
    Hashtbl.remove solver.seen v;
    decr counter;
    decr index;
    if !counter = 0 then begin
      uip := -lit;
      continue_walk := false
    end
    else
      match solver.reasons.(v) with
      | Some reason ->
        (* Skip the asserting literal itself when absorbing. *)
        Array.iter
          (fun l ->
             let w = lit_var l in
             if w <> v && (not (Hashtbl.mem solver.seen w))
                && solver.levels.(w) > 0 then begin
               Hashtbl.add solver.seen w ();
               bump_var solver w;
               if solver.levels.(w) >= conflict_level then incr counter
               else learned := l :: !learned
             end)
          reason.lits
      | None ->
        (* A decision inside the conflict level other than the UIP
           cannot happen before counter reaches 0. *)
        assert false
  done;
  let others = !learned in
  let backjump_level =
    List.fold_left (fun acc lit -> max acc (solver.levels.(lit_var lit))) 0
      others
  in
  (!uip :: others, backjump_level)

let add_learned solver lits =
  match lits with
  | [] ->
    solver.unsat <- true;
    None
  | [ lit ] ->
    backtrack solver 0;
    if lit_value solver lit = -1 then solver.unsat <- true
    else if lit_value solver lit = 0 then enqueue solver lit None;
    None
  | first :: _ ->
    let arr = Array.of_list lits in
    (* Position 1 must hold a literal from the backjump level so the
       watch invariant is restored after backtracking: pick the literal
       with the highest level among the rest. *)
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if solver.levels.(lit_var arr.(i)) > solver.levels.(lit_var arr.(!best))
      then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let clause = { lits = arr; learned = true } in
    watch solver arr.(0) clause;
    watch solver arr.(1) clause;
    ignore first;
    Some clause

let add_clause solver lits =
  if List.exists (fun lit -> lit = 0) lits then
    invalid_arg "Sat.add_clause: literal 0";
  if not solver.unsat then begin
    List.iter (fun lit -> ensure_vars solver (lit_var lit)) lits;
    (* At level 0 only: drop false literals, detect satisfied/unit. *)
    assert (solver.level = 0);
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun lit -> List.mem (-lit) lits) lits
      || List.exists (fun lit -> lit_value solver lit = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun lit -> lit_value solver lit <> -1) lits in
      match lits with
      | [] -> solver.unsat <- true
      | [ lit ] ->
        enqueue solver lit None;
        (match propagate solver with
         | Some _ -> solver.unsat <- true
         | None -> ())
      | _ ->
        let arr = Array.of_list lits in
        let clause = { lits = arr; learned = false } in
        solver.clauses <- clause :: solver.clauses;
        solver.nclauses <- solver.nclauses + 1;
        watch solver arr.(0) clause;
        watch solver arr.(1) clause
    end
  end

type outcome =
  | Sat of bool array
  | Unsat

let decide solver lit =
  solver.trail_lims <- solver.trail_size :: solver.trail_lims;
  solver.level <- solver.level + 1;
  enqueue solver lit None

let pick_branch_var solver =
  let best = ref 0 in
  let best_activity = ref neg_infinity in
  for v = 1 to solver.nvars do
    if solver.values.(v) = 0 && solver.activity.(v) > !best_activity then begin
      best := v;
      best_activity := solver.activity.(v)
    end
  done;
  !best

let model solver =
  let m = Array.make (solver.nvars + 1) false in
  for v = 1 to solver.nvars do
    m.(v) <- solver.values.(v) = 1
  done;
  m

exception Answer of outcome

let solve ?budget ?(assumptions = []) solver =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.sat_solve;
  (* One fuel unit per decision and per conflict: both bound the
     search tree, so fuel exhaustion implies bounded work. *)
  let tick =
    match budget with
    | Some budget ->
      fun () -> Speccc_runtime.Budget.checkpoint budget ~stage:"sat"
    | None -> Fun.id
  in
  if solver.unsat then Unsat
  else begin
    backtrack solver 0;
    let assumptions = Array.of_list assumptions in
    let restart_limit = ref 100 in
    let conflicts_since_restart = ref 0 in
    try
      (match propagate solver with
       | Some _ -> raise (Answer Unsat)
       | None -> ());
      while true do
        match propagate solver with
        | Some conflict ->
          tick ();
          solver.conflicts <- solver.conflicts + 1;
          incr conflicts_since_restart;
          if solver.level = 0 then begin
            solver.unsat <- true;
            raise (Answer Unsat)
          end;
          (* Conflicts strictly inside assumption levels mean the
             assumptions themselves are contradictory with the
             clauses. *)
          if solver.level <= Array.length assumptions then
            raise (Answer Unsat);
          let learned, backjump_level = analyze solver conflict in
          backtrack solver backjump_level;
          (match add_learned solver learned with
           | Some clause -> enqueue solver clause.lits.(0) (Some clause)
           | None -> if solver.unsat then raise (Answer Unsat));
          decay_activity solver
        | None ->
          if !conflicts_since_restart >= !restart_limit then begin
            conflicts_since_restart := 0;
            restart_limit := !restart_limit * 3 / 2;
            backtrack solver 0
          end
          else begin
            (* Re-establish assumptions as the first decisions. *)
            let next_assumption =
              if solver.level < Array.length assumptions then
                Some assumptions.(solver.level)
              else None
            in
            match next_assumption with
            | Some lit ->
              (match lit_value solver lit with
               | 1 ->
                 (* Already true: introduce a dummy decision level so
                    level counting stays aligned with assumptions. *)
                 solver.trail_lims <- solver.trail_size :: solver.trail_lims;
                 solver.level <- solver.level + 1
               | -1 -> raise (Answer Unsat)
               | _ -> decide solver lit)
            | None ->
              tick ();
              let v = pick_branch_var solver in
              if v = 0 then raise (Answer (Sat (model solver)))
              else
                decide solver (if solver.polarity.(v) then v else -v)
          end
      done;
      assert false
    with Answer outcome ->
      backtrack solver 0;
      outcome
  end

let solve_clauses ?budget ?assumptions clauses =
  let solver = create () in
  List.iter (add_clause solver) clauses;
  solve ?budget ?assumptions solver

(* ---------- unsat-core extraction over assumptions ---------- *)

type core_outcome =
  | Core_sat of bool array
  | Core_unsat of int list

let solve_core ?budget ~assumptions solver =
  match solve ?budget ~assumptions solver with
  | Sat model -> Core_sat model
  | Unsat ->
    (* Destructive (deletion-based) minimization: drop one assumption
       at a time and keep the drop whenever the instance stays
       unsatisfiable.  The result is a minimal core w.r.t. single
       removals — each surviving assumption is necessary.  Cost is one
       incremental solve call per assumption, which is the right trade
       for the requirement-level selector literals this surface is
       meant for (tens of assumptions, not thousands). *)
    let rec minimize kept = function
      | [] -> List.rev kept
      | candidate :: rest ->
        (match solve ?budget ~assumptions:(List.rev_append kept rest) solver with
         | Unsat -> minimize kept rest
         | Sat _ -> minimize (candidate :: kept) rest)
    in
    (* The clauses alone may already be unsatisfiable: empty core. *)
    (match solve ?budget solver with
     | Unsat -> Core_unsat []
     | Sat _ -> Core_unsat (minimize [] assumptions))
