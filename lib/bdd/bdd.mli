(** Reduced ordered binary decision diagrams with hash-consing.

    Variables are non-negative integers; the variable order is the
    numeric order (smaller index = closer to the root) until
    {!reorder} installs a different permutation.  Nodes are
    hash-consed inside a {!manager}, so structural equality of diagrams
    built in the same manager is physical equality of node identifiers
    ({!equal} is O(1)).

    The package is deliberately classical — unique table, ITE with a
    direct-mapped computed table, quantification, group-sifting
    reordering — and is the backend of the symbolic synthesis
    engine. *)

type manager
type t

val manager : unit -> manager
(** A fresh manager with no variables. *)

val node_count : manager -> int
(** Number of hash-consed nodes in the unique table (diagnostics). *)

val clear_caches : manager -> unit
(** Drop operation caches (unique table is kept). *)

(** {1 Diagnostics} *)

type counters = {
  nodes : int;      (** nodes ever hash-consed, across all managers *)
  op_hits : int;    (** computed-table hits (ite + quantification) *)
  op_misses : int;  (** computed-table misses *)
  reorders : int;   (** dynamic reordering passes *)
}

val counters : unit -> counters
(** Process-wide cumulative counters, for [--stats] and health
    reports. *)

val has_budget : manager -> bool
(** Whether a governor budget is currently installed. *)

val set_budget : manager -> Speccc_runtime.Budget.t option -> unit
(** Govern this manager: every subsequent node construction spends one
    fuel unit of the budget (stage ["bdd"]), so runaway
    [ite]/quantification fixpoints abort with
    [Speccc_runtime.Runtime.Interrupt] instead of hanging.  [None]
    removes the governor. *)

(** {1 Constants and variables} *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** [var m i] is the diagram of variable [i].  Raises
    [Invalid_argument] on negative [i]. *)

val nvar : manager -> int -> t
(** Negated variable. *)

(** {1 Structure} *)

val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val hash : t -> int

val top_var : t -> int option
(** Root variable, [None] for constants. *)

val top : t -> int
(** Root variable, [-1] for constants — allocation-free variant of
    {!top_var} for hot traversals. *)

val level : manager -> int -> int
(** Order position of a variable: smaller = closer to the root.  The
    identity until {!reorder} installs a permutation. *)

val low : t -> t
val high : t -> t
(** Cofactors of a non-constant node; raise [Invalid_argument] on
    constants. *)

(** {1 Boolean operations} *)

val ite : manager -> t -> t -> t -> t
val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val imp : manager -> t -> t -> t
val eqv : manager -> t -> t -> t
val and_list : manager -> t list -> t
val or_list : manager -> t list -> t

(** {1 Quantification and substitution} *)

val exists : manager -> int list -> t -> t
val forall : manager -> int list -> t -> t

val restrict : manager -> (int * bool) list -> t -> t
(** Cofactor with respect to an assignment of some variables. *)

val compose : manager -> int -> t -> t -> t
(** [compose m v g f] substitutes diagram [g] for variable [v] in
    [f]. *)

val rename : manager -> (int * int) list -> t -> t
(** Variable renaming.  The mapping must be injective;
    order-compatibility is {e not} required (implemented via compose,
    so arbitrary renamings are correct, just slower for large
    shifts). *)

val rename_monotone : manager -> (int * int) list -> t -> t
(** Renaming by a single memoized traversal — fast, but only sound
    when the mapping is strictly increasing along the variable order
    on the diagram's support and no target variable occurs in the
    support.  Raises [Invalid_argument] when the mapping is not
    monotone; the support condition is the caller's responsibility.
    This is the workhorse for current-state/next-state swaps in
    interleaved layouts. *)

(** {1 Analysis} *)

val support : manager -> t -> int list
(** Variables the diagram depends on, in variable-order position
    (root-most first). *)

val sat_count : manager -> t -> nvars:int -> float
(** Number of satisfying assignments over [nvars] variables
    ([0 .. nvars-1] all considered, whether or not in the support). *)

val any_sat : t -> (int * bool) list option
(** Some satisfying partial assignment (support variables only), or
    [None] if the diagram is [zero]. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under a total assignment. *)

val size : t -> int
(** Number of distinct nodes reachable from this diagram (including
    terminals). *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering (variables shown by index). *)

(** {1 Dynamic variable reordering}

    Nodes are immutable, so reordering cannot patch the live graph in
    place the way mutable BDD packages do.  Instead {!reorder} sifts a
    scratch copy of everything reachable from the supplied roots and
    rebuilds it under the improved order, returning the translated
    roots (in the same positions).  {b Every [t] of this manager not
    passed as a root is invalid after the call} — callers must thread
    their complete live set through.  The rebuild also collects
    garbage: nodes unreachable from the roots are dropped from the
    unique table. *)

val set_reorder_threshold : manager -> int option -> unit
(** Unique-table size at which {!reorder_due} starts reporting [true];
    [None] (the default) disables the trigger.  After a reordering the
    threshold is doubled from the surviving live size, so the trigger
    fires on growth, not on every subsequent operation. *)

val reorder_due : manager -> bool
(** Whether the unique table has outgrown the configured threshold. *)

val reorder :
  manager ->
  ?pinned:int -> ?groups:int list list -> ?candidates:int ->
  t list -> t list
(** [reorder m ~pinned ~groups roots] runs one pass of Rudell group
    sifting over the [candidates] heaviest groups (default 32) and
    returns the roots rebuilt under the new order.
    [pinned] keeps the top [pinned] order positions fixed (used to keep
    input variables root-most so strategy extraction can cofactor on
    them); [groups] lists variables that must stay adjacent, in their
    current relative order — e.g. interleaved current/next state pairs
    whose adjacency monotone renaming relies on.  Raises
    [Invalid_argument] if a group is not contiguous in the current
    order. *)

val reorders : manager -> int
(** Reordering passes performed by this manager. *)
