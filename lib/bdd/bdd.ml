type t =
  | Zero
  | One
  | Node of { id : int; var : int; low : t; high : t }

let node_id = function Zero -> 0 | One -> 1 | Node { id; _ } -> id

(* Process-wide counters, cumulative across managers.  Plain references:
   the synthesis core is single-threaded per process, and these feed
   diagnostics only. *)
let created_total = ref 0
let op_hits_total = ref 0
let op_misses_total = ref 0
let reorders_total = ref 0

type counters = {
  nodes : int;      (* nodes ever hash-consed *)
  op_hits : int;    (* computed-table hits (ite + quantification) *)
  op_misses : int;  (* computed-table misses *)
  reorders : int;   (* dynamic reordering passes *)
}

let counters () =
  {
    nodes = !created_total;
    op_hits = !op_hits_total;
    op_misses = !op_misses_total;
    reorders = !reorders_total;
  }

type manager = {
  mutable next_id : int;
  unique : (int, t) Hashtbl.t;  (* packed (var, low, high) ↦ node *)
  (* Direct-mapped lossy computed table for [ite] (CUDD-style): parallel
     int arrays hold the operand triple, [ct_r] the result.  A colliding
     entry is simply overwritten — recomputation returns the same
     canonical node, so losing an entry costs time, never soundness.
     Compared to a keyed hashtable this does no allocation per probe
     (no boxed tuple, no [Some]). *)
  mutable ct_f : int array;
  mutable ct_g : int array;
  mutable ct_h : int array;
  mutable ct_r : t array;
  mutable ct_mask : int;
  mutable ct_grow_at : int;     (* next_id at which the table doubles *)
  (* Same scheme for quantification, keyed by (node, varset token). *)
  mutable qt_node : int array;
  mutable qt_key : int array;
  mutable qt_r : t array;
  mutable qt_mask : int;
  mutable quant_vars : int list;        (* vars of current quantification *)
  mutable quant_key : int;              (* token for quant_vars *)
  quant_keys : (int list, int) Hashtbl.t;  (* varset ↦ stable token *)
  mutable next_quant_key : int;
  (* Dynamic variable order: [level_of.(v)] is the depth of variable
     [v]; empty arrays mean the identity order.  Only [reorder] ever
     installs a non-identity permutation. *)
  mutable level_of : int array;
  mutable var_at : int array;
  mutable reorder_threshold : int option;
  mutable reorders : int;
  mutable budget : Speccc_runtime.Budget.t option;
}

let ct_bits_initial = 12
let ct_bits_max = 19

let make_ct bits = (Array.make (1 lsl bits) (-1), 1 lsl bits)

let manager () =
  let ct_f, _ = make_ct ct_bits_initial in
  let qt_node, _ = make_ct ct_bits_initial in
  {
    next_id = 2;
    unique = Hashtbl.create 4096;
    ct_f;
    ct_g = Array.make (1 lsl ct_bits_initial) (-1);
    ct_h = Array.make (1 lsl ct_bits_initial) (-1);
    ct_r = Array.make (1 lsl ct_bits_initial) Zero;
    ct_mask = (1 lsl ct_bits_initial) - 1;
    ct_grow_at = 4 * (1 lsl ct_bits_initial);
    qt_node;
    qt_key = Array.make (1 lsl ct_bits_initial) (-1);
    qt_r = Array.make (1 lsl ct_bits_initial) Zero;
    qt_mask = (1 lsl ct_bits_initial) - 1;
    quant_vars = [];
    quant_key = -1;
    quant_keys = Hashtbl.create 64;
    next_quant_key = 0;
    level_of = [||];
    var_at = [||];
    reorder_threshold = None;
    reorders = 0;
    budget = None;
  }

let set_budget m budget = m.budget <- budget
let has_budget m = m.budget <> None

let node_count m = Hashtbl.length m.unique

let clear_caches m =
  Array.fill m.ct_f 0 (Array.length m.ct_f) (-1);
  Array.fill m.qt_node 0 (Array.length m.qt_node) (-1)

let zero _ = Zero
let one _ = One

(* Level of a variable under the current order; identity until the
   first reordering installs a permutation.  Variables beyond the
   permutation arrays keep their numeric level (reordering only ever
   permutes the prefix it was shown). *)
let level m v = if v < Array.length m.level_of then Array.unsafe_get m.level_of v else v

(* Packing limits for the unique-table key: variable in 12 bits, node
   ids in 25 bits each (33M nodes — far beyond what the memory
   watermarks allow to materialize). *)
let max_var = 1 lsl 12
let max_nodes = 1 lsl 25

let pack v l h = (v lsl 50) lor (l lsl 25) lor h

(* Every BDD operation (ite, quantification, composition) funnels
   through [mk], so charging fuel here governs them all: work between
   two [mk] calls is bounded by the operation caches. *)
let grow_ct m =
  let bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 (m.ct_mask + 1) 0
  in
  if bits < ct_bits_max then begin
    let size = 1 lsl (bits + 1) in
    m.ct_f <- Array.make size (-1);
    m.ct_g <- Array.make size (-1);
    m.ct_h <- Array.make size (-1);
    m.ct_r <- Array.make size Zero;
    m.ct_mask <- size - 1;
    m.qt_node <- Array.make size (-1);
    m.qt_key <- Array.make size (-1);
    m.qt_r <- Array.make size Zero;
    m.qt_mask <- size - 1
  end;
  m.ct_grow_at <- m.ct_grow_at * 4

let mk m v low high =
  (match m.budget with
   | Some budget -> Speccc_runtime.Budget.checkpoint budget ~stage:"bdd"
   | None -> ());
  if node_id low = node_id high then low
  else begin
    let key = pack v (node_id low) (node_id high) in
    match Hashtbl.find_opt m.unique key with
    | Some node -> node
    | None ->
      if m.next_id >= max_nodes then
        failwith "Bdd: node capacity exceeded (2^25 nodes)";
      if m.next_id >= m.ct_grow_at then grow_ct m;
      let node = Node { id = m.next_id; var = v; low; high } in
      m.next_id <- m.next_id + 1;
      incr created_total;
      Hashtbl.add m.unique key node;
      node
  end

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  if i >= max_var then invalid_arg "Bdd.var: variable index too large";
  mk m i Zero One

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  if i >= max_var then invalid_arg "Bdd.nvar: variable index too large";
  mk m i One Zero

let equal a b = node_id a = node_id b
let is_zero d = equal d Zero
let is_one d = equal d One
let hash d = node_id d

let top_var = function Zero | One -> None | Node { var = v; _ } -> Some v

(* Allocation-free variant for hot traversals. *)
let top = function Zero | One -> -1 | Node { var = v; _ } -> v

let low = function
  | Node { low = l; _ } -> l
  | Zero | One -> invalid_arg "Bdd.low: constant"

let high = function
  | Node { high = h; _ } -> h
  | Zero | One -> invalid_arg "Bdd.high: constant"

let cofactors v = function
  | Node { var; low; high; _ } when var = v -> low, high
  | d -> d, d

let rec ite m f g h =
  match f, g, h with
  | One, _, _ -> g
  | Zero, _, _ -> h
  | _, One, Zero -> f
  | _ when equal g h -> g
  | _ ->
    let fi = node_id f and gi = node_id g and hi = node_id h in
    let idx =
      ((fi * 0x9E3779B1) lxor (gi * 0x85EBCA77) lxor (hi * 0xC2B2AE3D))
      land m.ct_mask
    in
    if
      Array.unsafe_get m.ct_f idx = fi
      && Array.unsafe_get m.ct_g idx = gi
      && Array.unsafe_get m.ct_h idx = hi
    then begin
      incr op_hits_total;
      Array.unsafe_get m.ct_r idx
    end
    else begin
      incr op_misses_total;
      (* Split on the variable closest to the root under the current
         order. *)
      let lv d = match d with Node { var; _ } -> level m var | _ -> max_int in
      let lf = lv f and lg = lv g and lh = lv h in
      let l = min lf (min lg lh) in
      let v =
        if lf = l then (match f with Node { var; _ } -> var | _ -> assert false)
        else if lg = l then
          (match g with Node { var; _ } -> var | _ -> assert false)
        else (match h with Node { var; _ } -> var | _ -> assert false)
      in
      let f0, f1 = cofactors v f in
      let g0, g1 = cofactors v g in
      let h0, h1 = cofactors v h in
      let low = ite m f0 g0 h0 in
      let high = ite m f1 g1 h1 in
      let result = mk m v low high in
      let idx =
        ((fi * 0x9E3779B1) lxor (gi * 0x85EBCA77) lxor (hi * 0xC2B2AE3D))
        land m.ct_mask
      in
      Array.unsafe_set m.ct_f idx fi;
      Array.unsafe_set m.ct_g idx gi;
      Array.unsafe_set m.ct_h idx hi;
      Array.unsafe_set m.ct_r idx result;
      result
    end

let not_ m f = ite m f Zero One
let and_ m f g = ite m f g Zero
let or_ m f g = ite m f One g
let xor m f g = ite m f (not_ m g) g
let imp m f g = ite m f g One
let eqv m f g = ite m f g (not_ m g)

let and_list m fs = List.fold_left (and_ m) One fs
let or_list m fs = List.fold_left (or_ m) Zero fs

let sort_by_level m vars =
  List.sort_uniq
    (fun a b ->
       let c = compare (level m a) (level m b) in
       if c <> 0 then c else compare a b)
    vars

(* Quantification over a variable list (processed in order-level
   order).  The computed table is keyed by a stable token per variable
   set, so alternating between the same few sets — as the bucket
   eliminator in the synthesis engine does every round — keeps hitting
   cached entries instead of resetting. *)
let quantify m ~is_forall vars f =
  let vars = sort_by_level m vars in
  if m.quant_vars <> vars then begin
    m.quant_vars <- vars;
    m.quant_key <-
      (match Hashtbl.find_opt m.quant_keys vars with
       | Some k -> k
       | None ->
         let k = m.next_quant_key in
         m.next_quant_key <- m.next_quant_key + 1;
         Hashtbl.add m.quant_keys vars k;
         k)
  end;
  let tag = (m.quant_key lsl 1) lor (if is_forall then 1 else 0) in
  let rec go remaining f =
    match f, remaining with
    | (Zero | One), _ -> f
    | _, [] -> f
    | Node { id; var; low; high; _ }, v :: rest ->
      if level m var > level m v then go rest f
      else begin
        let idx = ((id * 0x9E3779B1) lxor (tag * 0x85EBCA77)) land m.qt_mask in
        if
          Array.unsafe_get m.qt_node idx = id
          && Array.unsafe_get m.qt_key idx = tag
        then begin
          incr op_hits_total;
          Array.unsafe_get m.qt_r idx
        end
        else begin
          incr op_misses_total;
          let result =
            if var = v then
              let l = go rest low and h = go rest high in
              if is_forall then and_ m l h else or_ m l h
            else
              let l = go remaining low and h = go remaining high in
              mk m var l h
          in
          Array.unsafe_set m.qt_node idx id;
          Array.unsafe_set m.qt_key idx tag;
          Array.unsafe_set m.qt_r idx result;
          result
        end
      end
  in
  go vars f

let exists m vars f = quantify m ~is_forall:false vars f
let forall m vars f = quantify m ~is_forall:true vars f

let restrict m assignment f =
  let assignment =
    List.sort_uniq
      (fun (a, _) (b, _) ->
         let c = compare (level m a) (level m b) in
         if c <> 0 then c else compare a b)
      assignment
  in
  let rec go remaining f =
    match f, remaining with
    | (Zero | One), _ -> f
    | _, [] -> f
    | Node { var; low; high; _ }, (v, value) :: rest ->
      if level m var > level m v then go rest f
      else if var = v then go rest (if value then high else low)
      else mk m var (go remaining low) (go remaining high)
  in
  go assignment f

let rec compose m v g f =
  match f with
  | Zero | One -> f
  | Node { var; low; high; _ } ->
    if level m var > level m v then f
    else if var = v then ite m g high low
    else
      let l = compose m v g low and h = compose m v g high in
      ite m (var_of m var) h l
and var_of m i = mk m i Zero One

let rename m mapping f =
  (* Substitute one variable at a time through fresh placeholders to
     avoid capture, then map placeholders to targets.  For the common
     case of disjoint source/target sets a direct pass suffices. *)
  let sources = List.map fst mapping in
  let targets = List.map snd mapping in
  let collision = List.exists (fun t -> List.mem t sources) targets in
  if not collision then
    List.fold_left (fun acc (src, dst) -> compose m src (var_of m dst) acc) f
      mapping
  else begin
    (* Route through placeholder variables beyond every used index. *)
    let max_used =
      List.fold_left max 0 (sources @ targets) + 1
    in
    let staged =
      List.mapi (fun i (src, dst) -> (src, max_used + i, dst)) mapping
    in
    let f =
      List.fold_left
        (fun acc (src, tmp, _) -> compose m src (var_of m tmp) acc)
        f staged
    in
    List.fold_left
      (fun acc (_, tmp, dst) -> compose m tmp (var_of m dst) acc)
      f staged
  end

let rename_monotone m mapping f =
  let mapping =
    List.sort
      (fun (a, _) (b, _) -> compare (level m a) (level m b))
      mapping
  in
  let rec check_monotone = function
    | [] | [ _ ] -> ()
    | (_, dst1) :: (((_, dst2) :: _) as rest) ->
      if level m dst1 >= level m dst2 then
        invalid_arg "Bdd.rename_monotone: mapping is not monotone";
      check_monotone rest
  in
  check_monotone mapping;
  List.iter
    (fun (_, dst) ->
       if dst < 0 then invalid_arg "Bdd.rename_monotone: negative target")
    mapping;
  let table = Hashtbl.create 16 in
  List.iter (fun (src, dst) -> Hashtbl.replace table src dst) mapping;
  let cache = Hashtbl.create 256 in
  let rec go = function
    | Zero -> Zero
    | One -> One
    | Node { id; var; low; high } ->
      (match Hashtbl.find_opt cache id with
       | Some result -> result
       | None ->
         let var' =
           match Hashtbl.find_opt table var with
           | Some dst -> dst
           | None -> var
         in
         let result = mk m var' (go low) (go high) in
         Hashtbl.add cache id result;
         result)
  in
  go f

let support m f =
  let module Int_set = Set.Make (Int) in
  let seen = Hashtbl.create 64 in
  let vars = ref Int_set.empty in
  let rec go = function
    | Zero | One -> ()
    | Node { id; var; low; high } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        vars := Int_set.add var !vars;
        go low;
        go high
      end
  in
  go f;
  List.sort
    (fun a b -> compare (level m a) (level m b))
    (Int_set.elements !vars)

(* [count d] = number of models of [d] over the order positions below
   [d]'s root level; models over all [nvars] positions are then
   obtained by scaling for the levels above the root. *)
let sat_count m f ~nvars =
  let cache = Hashtbl.create 64 in
  let pow2 k = 2.0 ** float_of_int k in
  let lvl = function Zero | One -> nvars | Node { var; _ } -> level m var in
  let rec count = function
    | Zero -> 0.0
    | One -> 1.0
    | Node { id; var; low; high } ->
      (match Hashtbl.find_opt cache id with
       | Some n -> n
       | None ->
         let n =
           (count low *. pow2 (lvl low - level m var - 1))
           +. (count high *. pow2 (lvl high - level m var - 1))
         in
         Hashtbl.add cache id n;
         n)
  in
  count f *. pow2 (lvl f)

let rec any_sat = function
  | Zero -> None
  | One -> Some []
  | Node { var; low; high; _ } ->
    (match any_sat high with
     | Some assignment -> Some ((var, true) :: assignment)
     | None ->
       (match any_sat low with
        | Some assignment -> Some ((var, false) :: assignment)
        | None -> None))

let rec eval d assignment =
  match d with
  | Zero -> false
  | One -> true
  | Node { var; low; high; _ } ->
    if assignment var then eval high assignment else eval low assignment

let size f =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go = function
    | Zero | One as terminal ->
      let id = node_id terminal in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        incr count
      end
    | Node { id; low; high; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        incr count;
        go low;
        go high
      end
  in
  go f;
  !count

let pp_dot ppf f =
  let seen = Hashtbl.create 64 in
  Format.fprintf ppf "digraph bdd {@\n";
  Format.fprintf ppf "  node0 [label=\"0\", shape=box];@\n";
  Format.fprintf ppf "  node1 [label=\"1\", shape=box];@\n";
  let rec go = function
    | Zero | One -> ()
    | Node { id; var; low; high } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        Format.fprintf ppf "  node%d [label=\"x%d\"];@\n" id var;
        Format.fprintf ppf "  node%d -> node%d [style=dashed];@\n" id
          (node_id low);
        Format.fprintf ppf "  node%d -> node%d;@\n" id (node_id high);
        go low;
        go high
      end
  in
  go f;
  Format.fprintf ppf "}@\n"

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering by group sifting.

   Hash-consed nodes are immutable, so CUDD's in-place level swaps
   cannot run on the live graph.  Instead the live portion (everything
   reachable from the caller's roots) is exported to a mutable scratch
   graph with reference counts, Rudell sifting runs there with exact
   per-level size accounting, and the result is imported back
   bottom-up into a fresh unique table.  Every [t] value not passed as
   a root is invalid afterwards. *)

type scratch = {
  mutable s_var : int array;
  mutable s_low : int array;
  mutable s_high : int array;
  mutable s_refs : int array;
  mutable s_n : int;
  s_tab : (int, int) Hashtbl.t array;  (* per var: (low, high) ↦ index *)
  s_cnt : int array;                   (* live nodes per var *)
  mutable s_total : int;
  s_lvl : int array;                   (* var ↦ level *)
  s_vat : int array;                   (* level ↦ var *)
}

let skey l h = (l lsl 28) lor h

let s_alloc s v l h =
  if s.s_n = Array.length s.s_var then begin
    let grow a fill =
      let b = Array.make (2 * Array.length a) fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    s.s_var <- grow s.s_var 0;
    s.s_low <- grow s.s_low 0;
    s.s_high <- grow s.s_high 0;
    s.s_refs <- grow s.s_refs 0
  end;
  let i = s.s_n in
  s.s_n <- i + 1;
  s.s_var.(i) <- v;
  s.s_low.(i) <- l;
  s.s_high.(i) <- h;
  s.s_refs.(i) <- 0;
  i

let rec s_decref s i =
  if i >= 2 then begin
    s.s_refs.(i) <- s.s_refs.(i) - 1;
    if s.s_refs.(i) = 0 then begin
      let v = s.s_var.(i) in
      Hashtbl.remove s.s_tab.(v) (skey s.s_low.(i) s.s_high.(i));
      s.s_cnt.(v) <- s.s_cnt.(v) - 1;
      s.s_total <- s.s_total - 1;
      s_decref s s.s_low.(i);
      s_decref s s.s_high.(i)
    end
  end

let s_incref s i = if i >= 2 then s.s_refs.(i) <- s.s_refs.(i) + 1

(* Find-or-create with the reduction rule; fresh nodes hold references
   to their children and start with zero parents (the caller takes the
   reference). *)
let s_mk s v l h =
  if l = h then l
  else
    let key = skey l h in
    match Hashtbl.find_opt s.s_tab.(v) key with
    | Some i -> i
    | None ->
      let i = s_alloc s v l h in
      s_incref s l;
      s_incref s h;
      s.s_cnt.(v) <- s.s_cnt.(v) + 1;
      s.s_total <- s.s_total + 1;
      Hashtbl.add s.s_tab.(v) key i;
      i

(* Exchange adjacent levels [l] and [l+1].  Only nodes labelled with
   the upper variable that reference the lower one are rewritten, in
   place, so parent links stay valid. *)
let s_swap s l =
  let x = s.s_vat.(l) and y = s.s_vat.(l + 1) in
  let members = Hashtbl.fold (fun _ i acc -> i :: acc) s.s_tab.(x) [] in
  List.iter
    (fun f ->
       let f0 = s.s_low.(f) and f1 = s.s_high.(f) in
       let touches n = n >= 2 && s.s_var.(n) = y in
       if touches f0 || touches f1 then begin
         Hashtbl.remove s.s_tab.(x) (skey f0 f1);
         let f00, f01 =
           if touches f0 then (s.s_low.(f0), s.s_high.(f0)) else (f0, f0)
         in
         let f10, f11 =
           if touches f1 then (s.s_low.(f1), s.s_high.(f1)) else (f1, f1)
         in
         let g0 = s_mk s x f00 f10 in
         s_incref s g0;
         let g1 = s_mk s x f01 f11 in
         s_incref s g1;
         s.s_var.(f) <- y;
         s.s_low.(f) <- g0;
         s.s_high.(f) <- g1;
         Hashtbl.add s.s_tab.(y) (skey g0 g1) f;
         s.s_cnt.(x) <- s.s_cnt.(x) - 1;
         s.s_cnt.(y) <- s.s_cnt.(y) + 1;
         s_decref s f0;
         s_decref s f1
       end)
    members;
  s.s_vat.(l) <- y;
  s.s_vat.(l + 1) <- x;
  s.s_lvl.(y) <- l;
  s.s_lvl.(x) <- l + 1

(* Move variable [v] down one level repeatedly. *)
let s_move_down s v times =
  for _ = 1 to times do
    s_swap s s.s_lvl.(v)
  done

(* Swap two adjacent variable groups in the sequence. *)
let swap_groups s a b =
  (* Move each member of [a], bottom-most first, below all of [b]. *)
  for i = Array.length a - 1 downto 0 do
    s_move_down s a.(i) (Array.length b)
  done

let max_growth = 2.0

(* Sift one group through every legal position (levels >= [pinned]) and
   settle it where the live graph was smallest. *)
let sift_group s seq pos =
  let ngroups = Array.length seq in
  let best = ref s.s_total and best_pos = ref pos and cur = ref pos in
  let record () =
    if s.s_total < !best then begin
      best := s.s_total;
      best_pos := !cur
    end
  in
  (* Down to the bottom, aborting when the graph blows past the growth
     limit. *)
  (try
     while !cur < ngroups - 1 do
       swap_groups s seq.(!cur) seq.(!cur + 1);
       let tmp = seq.(!cur) in
       seq.(!cur) <- seq.(!cur + 1);
       seq.(!cur + 1) <- tmp;
       incr cur;
       record ();
       if float_of_int s.s_total > max_growth *. float_of_int !best then
         raise Exit
     done
   with Exit -> ());
  (* Up to the top.  The abort is only allowed once the group has
     passed the best position found so far, so settling can always
     reach it going down. *)
  (try
     while !cur > 0 do
       swap_groups s seq.(!cur - 1) seq.(!cur);
       let tmp = seq.(!cur) in
       seq.(!cur) <- seq.(!cur - 1);
       seq.(!cur - 1) <- tmp;
       decr cur;
       record ();
       if
         !cur < !best_pos
         && float_of_int s.s_total > max_growth *. float_of_int !best
       then raise Exit
     done
   with Exit -> ());
  (* Settle at the best position. *)
  while !cur < !best_pos do
    swap_groups s seq.(!cur) seq.(!cur + 1);
    let tmp = seq.(!cur) in
    seq.(!cur) <- seq.(!cur + 1);
    seq.(!cur + 1) <- tmp;
    incr cur
  done;
  while !cur > !best_pos do
    swap_groups s seq.(!cur - 1) seq.(!cur);
    let tmp = seq.(!cur) in
    seq.(!cur) <- seq.(!cur - 1);
    seq.(!cur - 1) <- tmp;
    decr cur
  done

let set_reorder_threshold m threshold = m.reorder_threshold <- threshold

let reorder_due m =
  match m.reorder_threshold with
  | None -> false
  | Some threshold -> Hashtbl.length m.unique >= threshold

let reorders m = m.reorders

let reorder m ?(pinned = 0) ?(groups = []) ?(candidates = 32) roots =
  (* Determine the variable universe: everything the manager has seen
     plus everything mentioned by roots and groups. *)
  let maxvar = ref (Array.length m.var_at - 1) in
  let scan_var v = if v > !maxvar then maxvar := v in
  List.iter (fun g -> List.iter scan_var g) groups;
  let seen = Hashtbl.create 1024 in
  let rec scan = function
    | Zero | One -> ()
    | Node { id; var; low; high } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        scan_var var;
        scan low;
        scan high
      end
  in
  List.iter scan roots;
  let nvars = !maxvar + 1 in
  if nvars <= 0 then roots
  else begin
    (* Scratch graph export. *)
    let s =
      {
        s_var = Array.make 1024 0;
        s_low = Array.make 1024 0;
        s_high = Array.make 1024 0;
        s_refs = Array.make 1024 0;
        s_n = 2;
        s_tab = Array.init nvars (fun _ -> Hashtbl.create 64);
        s_cnt = Array.make nvars 0;
        s_total = 0;
        s_lvl =
          Array.init nvars (fun v ->
              if v < Array.length m.level_of then m.level_of.(v) else v);
        s_vat =
          Array.init nvars (fun l ->
              if l < Array.length m.var_at then m.var_at.(l) else l);
      }
    in
    let export = Hashtbl.create 1024 in
    let rec exp = function
      | Zero -> 0
      | One -> 1
      | Node { id; var; low; high } ->
        (match Hashtbl.find_opt export id with
         | Some i -> i
         | None ->
           let l = exp low in
           let h = exp high in
           let i = s_mk s var l h in
           Hashtbl.add export id i;
           i)
    in
    let root_indices = List.map (fun r -> let i = exp r in s_incref s i; i) roots in
    (* Group construction: supplied groups (validated to be
       level-contiguous in the given order) plus singletons, ordered by
       current level; pinned levels are excluded from sifting. *)
    let in_group = Array.make nvars false in
    let group_list = ref [] in
    List.iter
      (fun g ->
         match g with
         | [] -> ()
         | first :: rest ->
           let ok =
             fst
               (List.fold_left
                  (fun (ok, prev) v ->
                     (ok && s.s_lvl.(v) = prev + 1, s.s_lvl.(v)))
                  (true, s.s_lvl.(first))
                  rest)
           in
           if not ok then
             invalid_arg "Bdd.reorder: group is not level-contiguous";
           List.iter (fun v -> in_group.(v) <- true) g;
           if s.s_lvl.(first) >= pinned then
             group_list := Array.of_list g :: !group_list)
      groups;
    for v = 0 to nvars - 1 do
      if (not in_group.(v)) && s.s_lvl.(v) >= pinned then
        group_list := [| v |] :: !group_list
    done;
    let seq =
      Array.of_list
        (List.sort
           (fun a b -> compare s.s_lvl.(a.(0)) s.s_lvl.(b.(0)))
           !group_list)
    in
    (* Sift candidates: heaviest groups first. *)
    let weight g = Array.fold_left (fun acc v -> acc + s.s_cnt.(v)) 0 g in
    let sifted =
      List.filter (fun g -> weight g > 0) (Array.to_list seq)
    in
    let sifted =
      List.sort (fun a b -> compare (weight b) (weight a)) sifted
    in
    let sifted = List.filteri (fun i _ -> i < candidates) sifted in
    List.iter
      (fun g ->
         (* The group's position may have shifted since the last sift. *)
         let pos = ref (-1) in
         Array.iteri (fun i g' -> if g' == g then pos := i) seq;
         if !pos >= 0 then sift_group s seq !pos)
      sifted;
    (* Install the final order. *)
    m.level_of <- Array.copy s.s_lvl;
    m.var_at <- Array.copy s.s_vat;
    (* Import bottom-up into a fresh unique table (this also collects
       garbage: only live nodes survive). *)
    Hashtbl.reset m.unique;
    clear_caches m;
    let live = ref [] in
    for i = 2 to s.s_n - 1 do
      if s.s_refs.(i) > 0 then live := i :: !live
    done;
    let live =
      List.sort
        (fun a b -> compare s.s_lvl.(s.s_var.(b)) s.s_lvl.(s.s_var.(a)))
        !live
    in
    let imported = Array.make s.s_n Zero in
    imported.(1) <- One;
    List.iter
      (fun i ->
         imported.(i) <-
           mk m s.s_var.(i) imported.(s.s_low.(i)) imported.(s.s_high.(i)))
      live;
    m.reorders <- m.reorders + 1;
    incr reorders_total;
    (match m.reorder_threshold with
     | Some threshold ->
       m.reorder_threshold <-
         Some (max threshold (2 * Hashtbl.length m.unique))
     | None -> ());
    List.map (fun i -> imported.(i)) root_indices
  end
