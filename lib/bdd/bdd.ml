type t =
  | Zero
  | One
  | Node of { id : int; var : int; low : t; high : t }

let node_id = function Zero -> 0 | One -> 1 | Node { id; _ } -> id

type manager = {
  mutable next_id : int;
  unique : (int * int * int, t) Hashtbl.t;     (* (var, low, high) ↦ node *)
  ite_cache : (int * int * int, t) Hashtbl.t;
  quant_cache : (bool * int * int, t) Hashtbl.t; (* (is_forall, varset key, node) *)
  mutable quant_vars : int list;               (* vars of the current quantification *)
  mutable quant_key : int;                     (* cache key for quant_vars *)
  mutable next_quant_key : int;
  mutable budget : Speccc_runtime.Budget.t option;
}

let manager () = {
  next_id = 2;
  unique = Hashtbl.create 4096;
  ite_cache = Hashtbl.create 4096;
  quant_cache = Hashtbl.create 1024;
  quant_vars = [];
  quant_key = -1;
  next_quant_key = 0;
  budget = None;
}

let set_budget m budget = m.budget <- budget

let node_count m = Hashtbl.length m.unique

let clear_caches m =
  Hashtbl.reset m.ite_cache;
  Hashtbl.reset m.quant_cache

let zero _ = Zero
let one _ = One

(* Every BDD operation (ite, quantification, composition) funnels
   through [mk], so charging fuel here governs them all: work between
   two [mk] calls is bounded by the operation caches. *)
let mk m v low high =
  (match m.budget with
   | Some budget -> Speccc_runtime.Budget.checkpoint budget ~stage:"bdd"
   | None -> ());
  if node_id low = node_id high then low
  else begin
    let key = (v, node_id low, node_id high) in
    match Hashtbl.find_opt m.unique key with
    | Some node -> node
    | None ->
      let node = Node { id = m.next_id; var = v; low; high } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key node;
      node
  end

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  mk m i Zero One

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m i One Zero

let equal a b = node_id a = node_id b
let is_zero d = equal d Zero
let is_one d = equal d One
let hash d = node_id d

let top_var = function Zero | One -> None | Node { var = v; _ } -> Some v

let low = function
  | Node { low = l; _ } -> l
  | Zero | One -> invalid_arg "Bdd.low: constant"

let high = function
  | Node { high = h; _ } -> h
  | Zero | One -> invalid_arg "Bdd.high: constant"

(* Top variable of up to three diagrams, for Shannon expansion. *)
let min_top3 f g h =
  let top d = match d with Node { var = v; _ } -> v | Zero | One -> max_int in
  min (top f) (min (top g) (top h))

let cofactors v = function
  | Node { var; low; high; _ } when var = v -> low, high
  | d -> d, d

let rec ite m f g h =
  match f, g, h with
  | One, _, _ -> g
  | Zero, _, _ -> h
  | _, One, Zero -> f
  | _ when equal g h -> g
  | _ ->
    let key = (node_id f, node_id g, node_id h) in
    (match Hashtbl.find_opt m.ite_cache key with
     | Some result -> result
     | None ->
       let v = min_top3 f g h in
       let f0, f1 = cofactors v f in
       let g0, g1 = cofactors v g in
       let h0, h1 = cofactors v h in
       let low = ite m f0 g0 h0 in
       let high = ite m f1 g1 h1 in
       let result = mk m v low high in
       Hashtbl.add m.ite_cache key result;
       result)

let not_ m f = ite m f Zero One
let and_ m f g = ite m f g Zero
let or_ m f g = ite m f One g
let xor m f g = ite m f (not_ m g) g
let imp m f g = ite m f g One
let eqv m f g = ite m f g (not_ m g)

let and_list m fs = List.fold_left (and_ m) One fs
let or_list m fs = List.fold_left (or_ m) Zero fs

(* Quantification over a sorted variable list.  The cache is keyed by a
   token identifying the variable set, refreshed whenever a different
   set is supplied. *)
let quantify m ~is_forall vars f =
  let vars = List.sort_uniq compare vars in
  if m.quant_vars <> vars then begin
    m.quant_vars <- vars;
    m.quant_key <- m.next_quant_key;
    m.next_quant_key <- m.next_quant_key + 1;
    Hashtbl.reset m.quant_cache
  end;
  let key_of node = (is_forall, m.quant_key, node_id node) in
  let rec go remaining f =
    match f, remaining with
    | (Zero | One), _ -> f
    | _, [] -> f
    | Node { var; low; high; _ }, v :: rest ->
      if var > v then go rest f
      else begin
        match Hashtbl.find_opt m.quant_cache (key_of f) with
        | Some result -> result
        | None ->
          let result =
            if var = v then
              let l = go rest low and h = go rest high in
              if is_forall then and_ m l h else or_ m l h
            else
              let l = go remaining low and h = go remaining high in
              mk m var l h
          in
          Hashtbl.add m.quant_cache (key_of f) result;
          result
      end
  in
  go vars f

let exists m vars f = quantify m ~is_forall:false vars f
let forall m vars f = quantify m ~is_forall:true vars f

let restrict m assignment f =
  let assignment = List.sort_uniq compare assignment in
  let rec go remaining f =
    match f, remaining with
    | (Zero | One), _ -> f
    | _, [] -> f
    | Node { var; low; high; _ }, (v, value) :: rest ->
      if var > v then go rest f
      else if var = v then go rest (if value then high else low)
      else mk m var (go remaining low) (go remaining high)
  in
  go assignment f

let rec compose m v g f =
  match f with
  | Zero | One -> f
  | Node { var; low; high; _ } ->
    if var > v then f
    else if var = v then ite m g high low
    else
      let l = compose m v g low and h = compose m v g high in
      ite m (var_of m var) h l
and var_of m i = mk m i Zero One

let rename m mapping f =
  (* Substitute one variable at a time through fresh placeholders to
     avoid capture, then map placeholders to targets.  For the common
     case of disjoint source/target sets a direct pass suffices. *)
  let sources = List.map fst mapping in
  let targets = List.map snd mapping in
  let collision = List.exists (fun t -> List.mem t sources) targets in
  if not collision then
    List.fold_left (fun acc (src, dst) -> compose m src (var_of m dst) acc) f
      mapping
  else begin
    (* Route through placeholder variables beyond every used index. *)
    let max_used =
      List.fold_left max 0 (sources @ targets) + 1
    in
    let staged =
      List.mapi (fun i (src, dst) -> (src, max_used + i, dst)) mapping
    in
    let f =
      List.fold_left
        (fun acc (src, tmp, _) -> compose m src (var_of m tmp) acc)
        f staged
    in
    List.fold_left
      (fun acc (_, tmp, dst) -> compose m tmp (var_of m dst) acc)
      f staged
  end

let rename_monotone m mapping f =
  let mapping = List.sort compare mapping in
  let rec check_monotone = function
    | [] | [ _ ] -> ()
    | (_, dst1) :: (((_, dst2) :: _) as rest) ->
      if dst1 >= dst2 then
        invalid_arg "Bdd.rename_monotone: mapping is not monotone";
      check_monotone rest
  in
  check_monotone mapping;
  List.iter
    (fun (_, dst) ->
       if dst < 0 then invalid_arg "Bdd.rename_monotone: negative target")
    mapping;
  let table = Hashtbl.create 16 in
  List.iter (fun (src, dst) -> Hashtbl.replace table src dst) mapping;
  let cache = Hashtbl.create 256 in
  let rec go = function
    | Zero -> Zero
    | One -> One
    | Node { id; var; low; high } ->
      (match Hashtbl.find_opt cache id with
       | Some result -> result
       | None ->
         let var' =
           match Hashtbl.find_opt table var with
           | Some dst -> dst
           | None -> var
         in
         let result = mk m var' (go low) (go high) in
         Hashtbl.add cache id result;
         result)
  in
  go f

let support f =
  let module Int_set = Set.Make (Int) in
  let seen = Hashtbl.create 64 in
  let vars = ref Int_set.empty in
  let rec go = function
    | Zero | One -> ()
    | Node { id; var; low; high } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        vars := Int_set.add var !vars;
        go low;
        go high
      end
  in
  go f;
  Int_set.elements !vars

(* [count d] = number of models of [d] over variables
   [level d .. nvars-1], where [level] is the root variable ([nvars]
   for terminals).  Models over all [nvars] variables are then obtained
   by scaling for the free variables above the root. *)
let sat_count f ~nvars =
  let cache = Hashtbl.create 64 in
  let pow2 k = 2.0 ** float_of_int k in
  let level = function Zero | One -> nvars | Node { var; _ } -> var in
  let rec count = function
    | Zero -> 0.0
    | One -> 1.0
    | Node { id; var; low; high } ->
      (match Hashtbl.find_opt cache id with
       | Some n -> n
       | None ->
         let n =
           (count low *. pow2 (level low - var - 1))
           +. (count high *. pow2 (level high - var - 1))
         in
         Hashtbl.add cache id n;
         n)
  in
  count f *. pow2 (level f)

let rec any_sat = function
  | Zero -> None
  | One -> Some []
  | Node { var; low; high; _ } ->
    (match any_sat high with
     | Some assignment -> Some ((var, true) :: assignment)
     | None ->
       (match any_sat low with
        | Some assignment -> Some ((var, false) :: assignment)
        | None -> None))

let rec eval d assignment =
  match d with
  | Zero -> false
  | One -> true
  | Node { var; low; high; _ } ->
    if assignment var then eval high assignment else eval low assignment

let size f =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go = function
    | Zero | One as terminal ->
      let id = node_id terminal in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        incr count
      end
    | Node { id; low; high; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        incr count;
        go low;
        go high
      end
  in
  go f;
  !count

let pp_dot ppf f =
  let seen = Hashtbl.create 64 in
  Format.fprintf ppf "digraph bdd {@\n";
  Format.fprintf ppf "  node0 [label=\"0\", shape=box];@\n";
  Format.fprintf ppf "  node1 [label=\"1\", shape=box];@\n";
  let rec go = function
    | Zero | One -> ()
    | Node { id; var; low; high } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        Format.fprintf ppf "  node%d [label=\"x%d\"];@\n" id var;
        Format.fprintf ppf "  node%d -> node%d [style=dashed];@\n" id
          (node_id low);
        Format.fprintf ppf "  node%d -> node%d;@\n" id (node_id high);
        go low;
        go high
      end
  in
  go f;
  Format.fprintf ppf "}@\n"
