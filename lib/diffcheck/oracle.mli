(** The differential and metamorphic oracles.

    {!check} re-runs one {!Case.t} through the real pipeline stages and
    returns every {e divergence} — a violation of a cross-engine trust
    rule or of a metamorphic law.  An empty list means the case passed
    every applicable oracle.

    Trust rules for the engine differential (soundness asymmetry of
    the three engines):
    - [Consistent] is sound from {e every} engine (it ships a
      controller), so it may always be held against a trusted
      [Inconsistent].
    - [Inconsistent] is trusted from the explicit engine
      (game-theoretically exact) and from any verdict carrying an
      unsat core (tableau-proved); from the symbolic engine it is
      trusted only on template-class specs (the translator fragment,
      where the obligation game is complete).
    - The SAT rung never proves [Inconsistent]; if it does anyway,
      that alone is a divergence.
    - Closed specs (no inputs) reduce realizability to satisfiability,
      so the tableau ({!Speccc_lint.Lint.satisfiable}) and — on tiny
      alphabets — exhaustive lasso enumeration
      ({!Refeval.find_model}) serve as exact references.

    Metamorphic laws: NNF/simplify/hash-consing invariance, the
    antonym-merge law (swapping an absorbing adjective for its partner
    negates exactly the subject literal), the time-abstraction
    constraint system (θ = θ'·d + Δ, |Δ| < d, θ' ≥ 1, ΣΔ ≤ budget,
    domains after duplicate merge), analytic/SMT objective agreement,
    GCD-feasibility dominance, and partition disjointness /
    move-conflict rejection / idempotence. *)

type divergence = {
  oracle : string;
      (** which trust rule or law broke: ["engines"], ["certify"],
          ["tableau"], ["enumeration"], ["refeval"], ["nnf"],
          ["hashcons"], ["antonym"], ["translate"], ["timeabs"],
          ["partition"], ["crash"] *)
  detail : string;  (** human-readable evidence *)
}

val check : ?buggy_timeabs:bool -> Case.t -> divergence list
(** Run every oracle applicable to the case.  [buggy_timeabs]
    (default [false]) re-enables the historical θ' = 0 collapse in the
    time-abstraction solvers ([~allow_zero_theta:true]) {e without}
    relaxing the oracle — flipping it on demonstrates that the oracle
    catches the pre-fix bug (used by tests and docs). *)

val pp_divergence : Format.formatter -> divergence -> unit
