(** The fuzzer's unit of work: one self-contained checking scenario.

    A case carries everything an oracle needs to re-run it — so a case
    is also the unit of {e shrinking} ({!Shrink}) and of {e corpus
    persistence} ({!Corpus}): any divergence can be replayed from its
    case alone, with no reference to the generator state that produced
    it. *)

type ltl_spec = {
  inputs : string list;
  outputs : string list;
  formulas : Speccc_logic.Ltl.t list;
  template : bool;
      (** true when every formula instantiates the translator fragment
          (Globally-scope Dwyer templates), where the symbolic engine
          is complete and its [Inconsistent] verdicts are trusted by
          the differential oracle; free-form formulas leave this
          [false] and only soundness-carrying verdicts are compared *)
}

type t =
  | Ltl_spec of ltl_spec
      (** stage-2 scenario: realizability of an LTL specification *)
  | Doc of string list
      (** full-pipeline scenario: structured-English sentences fed to
          the real NLP front end *)
  | Timeabs of {
      thetas : int list;
      domains : Speccc_timeabs.Timeabs.delta_domain list;
      budget : int;
    }  (** time-abstraction optimization scenario (duplicate θ and
           mixed domains allowed — the merge is part of what is
           checked) *)
  | Partition_adjust of {
      formulas : Speccc_logic.Ltl.t list;
      to_input : string list;
      to_output : string list;
    }  (** partition inference over [formulas] followed by a manual
           {!Speccc_partition.Partition.adjust} with the given move
           lists *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (multi-line; used in divergence reports). *)

val size : t -> int
(** Rough cost metric used by the shrinker to accept strictly smaller
    candidates only. *)
