(** Seeded random generation of checking scenarios.

    Everything here draws exclusively from {!Prng}, so a seed fully
    determines the case sequence.  Documents are built from sentence
    templates that stay inside the structured-English grammar
    ([docs/GRAMMAR.md]) and the default lexicon, so generated specs
    exercise the {e real} NLP front end rather than a mock; LTL
    alphabets are kept small enough (≤ 5 propositions) that the
    explicit engine and the lasso-enumeration reference
    ({!Refeval.find_model}) stay affordable. *)

val formula :
  Prng.t -> props:string list -> depth:int -> Speccc_logic.Ltl.t
(** Random formula over the given propositions with AST depth at most
    [depth]; all connectives including [Until]/[Weak_until]/[Release]
    are reachable. *)

val ltl_spec : Prng.t -> Case.ltl_spec
(** Random specification.  Template-class specs ([template = true])
    instantiate Globally-scope Dwyer patterns over input guards and
    output responses — the fragment where the symbolic engine is
    complete; free-class specs use {!formula}.  Roughly a third are
    closed (no inputs), where realizability coincides with
    satisfiability and the tableau gives an exact reference. *)

val doc : Prng.t -> string list
(** Random structured-English document (2–4 sentences) over the
    default lexicon's subjects, verbs and absorbing adjective pairs.
    Every template has been validated to parse and translate. *)

val timeabs_case : Prng.t -> Case.t
(** Random time-abstraction problem; duplicate θ values and mixed
    domains are generated on purpose (the merge path is under test). *)

val partition_case : Prng.t -> Case.t
(** Random partition-inference + adjustment scenario; some move lists
    deliberately overlap, which the oracle expects {!Stdlib.invalid_arg}
    to reject. *)

val case : Prng.t -> Case.t
(** One scenario, kind chosen by weight (LTL specs most frequent). *)
