(** Driver for the differential/metamorphic fuzzing campaign.

    [run] generates [n] cases from a seed, checks each against every
    applicable oracle ({!Oracle.check}), shrinks each divergence to a
    minimal reproducer ({!Shrink.shrink}) and — when a corpus
    directory is given — persists the shrunk case as a replayable
    regression entry ({!Corpus}).  The whole campaign is deterministic
    in [seed] (fuel-bounded engines, splitmix64 streams). *)

type finding = {
  index : int;                       (** 0-based case number *)
  case : Case.t;                     (** as generated *)
  shrunk : Case.t;                   (** minimal reproducer *)
  divergence : Oracle.divergence;    (** evidence on the shrunk case *)
  corpus_file : string option;       (** where it was persisted *)
}

type summary = {
  total : int;
  by_kind : (string * int) list;     (** cases generated per kind *)
  findings : finding list;
}

val kind_name : Case.t -> string
(** ["ltl_spec"], ["doc"], ["timeabs"] or ["partition"]. *)

val run :
  ?buggy_timeabs:bool ->
  ?corpus_dir:string ->
  ?progress:(int -> Case.t -> unit) ->
  n:int ->
  seed:int ->
  unit ->
  summary
(** [progress] is called before each case is checked (for CLI
    feedback).  [buggy_timeabs] re-enables the θ' = 0 solver collapse
    to demonstrate oracle sensitivity; see {!Oracle.check}. *)

val replay :
  ?buggy_timeabs:bool ->
  string ->
  (string * (Oracle.divergence list, string) result) list
(** Replay every corpus entry of a directory: [Error] is a parse
    failure, [Ok []] a passing entry, [Ok divs] a still-divergent
    entry.  An empty or missing directory yields []. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_summary : Format.formatter -> summary -> unit
