open Speccc_logic
open Speccc_timeabs

type ltl_spec = {
  inputs : string list;
  outputs : string list;
  formulas : Ltl.t list;
  template : bool;
}

type t =
  | Ltl_spec of ltl_spec
  | Doc of string list
  | Timeabs of {
      thetas : int list;
      domains : Timeabs.delta_domain list;
      budget : int;
    }
  | Partition_adjust of {
      formulas : Ltl.t list;
      to_input : string list;
      to_output : string list;
    }

let pp_strings ppf xs =
  Format.fprintf ppf "%s" (String.concat ", " xs)

let pp_domain ppf = function
  | Timeabs.Nonnegative -> Format.fprintf ppf "nonneg"
  | Timeabs.Nonpositive -> Format.fprintf ppf "nonpos"
  | Timeabs.Exact -> Format.fprintf ppf "exact"

let pp ppf = function
  | Ltl_spec { inputs; outputs; formulas; template } ->
    Format.fprintf ppf "@[<v>ltl spec (%s):@,inputs: %a@,outputs: %a"
      (if template then "template" else "free")
      pp_strings inputs pp_strings outputs;
    List.iter
      (fun f -> Format.fprintf ppf "@,  %a" (Ltl_print.pp ~syntax:Ascii) f)
      formulas;
    Format.fprintf ppf "@]"
  | Doc sentences ->
    Format.fprintf ppf "@[<v>document:";
    List.iter (fun s -> Format.fprintf ppf "@,  %s" s) sentences;
    Format.fprintf ppf "@]"
  | Timeabs { thetas; domains; budget } ->
    Format.fprintf ppf "@[<v>timeabs: budget %d" budget;
    List.iter2
      (fun theta domain ->
         Format.fprintf ppf "@,  theta %d (%a)" theta pp_domain domain)
      thetas domains;
    Format.fprintf ppf "@]"
  | Partition_adjust { formulas; to_input; to_output } ->
    Format.fprintf ppf "@[<v>partition adjust:@,to_input: %a@,to_output: %a"
      pp_strings to_input pp_strings to_output;
    List.iter
      (fun f -> Format.fprintf ppf "@,  %a" (Ltl_print.pp ~syntax:Ascii) f)
      formulas;
    Format.fprintf ppf "@]"

let formulas_size formulas =
  List.fold_left (fun acc f -> acc + Ltl.size f) 0 formulas

let size = function
  | Ltl_spec { formulas; _ } -> formulas_size formulas
  | Doc sentences ->
    List.fold_left (fun acc s -> acc + 1 + String.length s / 16) 0 sentences
  | Timeabs { thetas; budget; _ } ->
    List.fold_left ( + ) budget thetas
  | Partition_adjust { formulas; to_input; to_output } ->
    List.length to_input + List.length to_output + formulas_size formulas
