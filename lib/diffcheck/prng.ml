type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014): one 64-bit mixing step per
   draw; passes BigCrush, trivially portable, and stateless enough to
   fork streams by reseeding. *)
let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 62-bit non-negative projection (an OCaml int holds 62 value
     bits); modulo bias is irrelevant at fuzzing bounds (n << 2^62). *)
  Int64.to_int (Int64.shift_right_logical (next t) 2) mod n

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float_of_int (int t 1_000_000) < p *. 1_000_000.

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Prng.pick_weighted: no positive weight";
  let rec find n = function
    | [] -> invalid_arg "Prng.pick_weighted: empty list"
    | (w, x) :: rest -> if n < w then x else find (n - w) rest
  in
  find (int t total) weighted

let sample t k xs =
  (* Decorate-sort shuffle on a fresh draw per element: determinism
     only depends on the stream position, not on list addresses. *)
  let decorated = List.map (fun x -> (next t, x)) xs in
  let shuffled = List.sort (fun (a, _) (b, _) -> Int64.compare a b) decorated in
  List.filteri (fun i _ -> i < k) (List.map snd shuffled)
