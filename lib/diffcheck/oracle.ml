open Speccc_logic
module R = Speccc_synthesis.Realizability
module Budget = Speccc_runtime.Budget
module Runtime = Speccc_runtime.Runtime
module Lint = Speccc_lint.Lint
module Certify = Speccc_certify.Certify
module Partition = Speccc_partition.Partition
module Timeabs = Speccc_timeabs.Timeabs
module Translate = Speccc_translate.Translate
module Parser = Speccc_nlp.Parser

type divergence = {
  oracle : string;
  detail : string;
}

let div oracle fmt = Printf.ksprintf (fun detail -> { oracle; detail }) fmt

let pp_divergence ppf { oracle; detail } =
  Format.fprintf ppf "[%s] %s" oracle detail

let fstr f = Ltl_print.to_string ~syntax:Ltl_print.Ascii f

(* Fuel, not wall clock: verdicts (and therefore fuzz results for a
   given seed) must not depend on machine speed.  The SAT rung gets a
   much smaller pool — on unrealizable specs it can only burn its
   whole budget escalating machine bounds (it never refutes), and a
   few thousand steps already let it certify the realizable ones. *)
let engine_fuel = 100_000
let sat_fuel = 5_000
let tableau_fuel = 200_000

(* ------------------------------------------------------------------ *)
(* Engine differential                                                *)

let run_engines ~inputs ~outputs formulas =
  let fresh () = Budget.create ~fuel:engine_fuel () in
  let runs =
    [
      ("explicit",
       R.check_governed ~budget:(fresh ()) ~engine:R.Explicit ~inputs
         ~outputs formulas);
      ("symbolic",
       R.check_governed ~budget:(fresh ()) ~engine:R.Symbolic ~inputs
         ~outputs formulas);
      ("sat",
       R.check_governed
         ~budget:(Budget.create ~fuel:sat_fuel ())
         ~skip:[ "symbolic"; "explicit" ]
         ~inputs ~outputs formulas);
    ]
  in
  List.filter_map
    (fun (label, r) ->
       match r with Ok report -> Some (label, report) | Error _ -> None)
    runs

(* Is this Inconsistent verdict one the trust rules accept as sound? *)
let trusted_inconsistent ~template (_label, report) =
  match report.R.verdict with
  | R.Inconsistent ->
    report.R.unsat_core <> None
    || report.R.engine_used = "explicit"
    || (template && report.R.engine_used = "symbolic")
  | _ -> false

let engines_differential ~inputs ~outputs ~template formulas =
  let reports = run_engines ~inputs ~outputs formulas in
  let divergences = ref [] in
  let add d = divergences := d :: !divergences in
  let consistent =
    List.filter (fun (_, r) -> r.R.verdict = R.Consistent) reports
  in
  let inconsistent =
    List.filter (fun (_, r) -> r.R.verdict = R.Inconsistent) reports
  in
  (* The SAT rung can only certify machines, never refute: an
     Inconsistent from it (without a lint core) is wrong by
     construction. *)
  List.iter
    (fun (label, r) ->
       if label = "sat" && r.R.engine_used = "sat" && r.R.unsat_core = None
       then
         add (div "engines" "SAT rung emitted Inconsistent without a core"))
    inconsistent;
  (* Sound verdicts must not conflict. *)
  (match consistent, List.filter (trusted_inconsistent ~template) reports with
   | (cl, _) :: _, (il, _) :: _ ->
     add
       (div "engines" "%s says consistent but %s proves inconsistent" cl il)
   | _ -> ());
  (* Certify every definite verdict with engine-independent machinery;
     a rejected witness is a divergence in its own right. *)
  List.iter
    (fun (label, report) ->
       match report.R.verdict with
       | R.Inconclusive _ -> ()
       | R.Consistent | R.Inconsistent ->
         let _, outcome =
           Certify.apply ~budget:(Budget.create ~fuel:tableau_fuel ())
             ~assumptions:[] formulas report
         in
         (match outcome with
          | Certify.Rejected evidence ->
            add (div "certify" "%s witness rejected: %s" label evidence)
          | Certify.Certified _ | Certify.No_witness _ -> ()))
    reports;
  (* Closed specs: realizability = satisfiability, and the tableau
     decides that exactly. *)
  let spec = Ltl.conj_list formulas in
  if inputs = [] && Ltl.size spec <= 80 then begin
    let sat =
      match
        Lint.satisfiable ~budget:(Budget.create ~fuel:tableau_fuel ()) spec
      with
      | model -> Some model
      | exception Runtime.Interrupt _ -> None
    in
    match sat with
    | Some (Some witness) ->
      if not (Trace.holds witness spec) then
        add
          (div "tableau" "tableau model does not satisfy the spec %s"
             (fstr spec));
      if Ltl.size spec <= 40 && not (Refeval.holds witness spec) then
        add
          (div "refeval"
             "trace and reference semantics disagree on the tableau model \
              of %s"
             (fstr spec));
      List.iter
        (fun entry ->
           if trusted_inconsistent ~template entry then
             add
               (div "tableau"
                  "spec is satisfiable (closed, so realizable) yet %s \
                   proves inconsistent"
                  (fst entry)))
        inconsistent
    | Some None ->
      List.iter
        (fun (label, _) ->
           add
             (div "tableau"
                "spec is unsatisfiable (closed, so unrealizable) yet %s \
                 says consistent"
                label))
        consistent
    | None -> ()
    end;
  (* Tiny closed alphabets: exhaustive lasso enumeration as a third,
     independent reference. *)
  let props = Ltl.props spec in
  if inputs = [] && List.length props <= 3 && Ltl.size spec <= 40 then begin
    match Refeval.find_model ~props ~max_positions:3 spec with
    | Some w ->
      if not (Trace.holds w spec) then
        add
          (div "enumeration"
             "reference model rejected by trace semantics for %s"
             (fstr spec));
      List.iter
        (fun entry ->
           if trusted_inconsistent ~template entry then
             add
               (div "enumeration"
                  "enumeration found a model yet %s proves inconsistent"
                  (fst entry)))
        inconsistent
    | None -> ()
  end;
  List.rev !divergences

(* ------------------------------------------------------------------ *)
(* NNF / simplify / hash-consing invariance                           *)

let nnf_invariance formulas =
  List.concat_map
    (fun f ->
       if Ltl.size f > 25 then []
       else begin
         let checks = ref [] in
         let add d = checks := d :: !checks in
         let nnf = Nnf.of_formula f in
         if not (Nnf.is_nnf nnf) then
           add (div "nnf" "of_formula result not in NNF: %s" (fstr nnf));
         if not (Lint.equivalent f nnf) then
           add
             (div "nnf" "NNF changed the language of %s into %s" (fstr f)
                (fstr nnf));
         let simp = Nnf.simplify f in
         if not (Lint.equivalent f simp) then
           add
             (div "nnf" "simplify changed the language of %s into %s"
                (fstr f) (fstr simp));
         (* Interning a structurally rebuilt copy must hit the same
            unique-table node. *)
         let copy = Ltl.map_props Ltl.prop f in
         if Ltl.id (Ltl.intern f) <> Ltl.id (Ltl.intern copy)
         || not (Ltl.equal_fast (Ltl.intern f) (Ltl.intern copy)) then
           add (div "hashcons" "rebuilt copy interned differently: %s"
                  (fstr f));
         List.rev !checks
       end)
    formulas

(* ------------------------------------------------------------------ *)
(* Documents: translation determinism + antonym-merge law             *)

(* Absorbing pairs (Antonym.defaults): swapping one for its partner in
   a copula position negates exactly the subject literal. *)
let absorbing_partner = function
  | "available" -> Some "unavailable"
  | "unavailable" -> Some "available"
  | "enabled" -> Some "disabled"
  | "disabled" -> Some "enabled"
  | "active" -> Some "inactive"
  | "inactive" -> Some "active"
  | "on" -> Some "off"
  | "off" -> Some "on"
  | "high" -> Some "low"
  | "low" -> Some "high"
  | "valid" -> Some "invalid"
  | "invalid" -> Some "valid"
  | _ -> None

let strip_punct word =
  let n = String.length word in
  let core_len =
    let rec go i =
      if i > 0 && (word.[i - 1] = '.' || word.[i - 1] = ',') then go (i - 1)
      else i
    in
    go n
  in
  (String.sub word 0 core_len, String.sub word core_len (n - core_len))

(* In every generator template the adjective sits right after its
   copula: "the S is ADJ" (subject just before "is") or
   "S shall [not] be ADJ" (subject just before "shall"). *)
let adjective_occurrences sentence =
  let tokens = String.split_on_char ' ' sentence in
  let arr = Array.of_list tokens in
  let occs = ref [] in
  Array.iteri
    (fun i tok ->
       let core, _ = strip_punct tok in
       match absorbing_partner (String.lowercase_ascii core) with
       | None -> ()
       | Some partner ->
         if i >= 2 then begin
           let prev = fst (strip_punct arr.(i - 1)) in
           let subject =
             match String.lowercase_ascii prev with
             | "is" -> Some (String.lowercase_ascii arr.(i - 2))
             | "be" ->
               (* walk back over "shall"/"not" to the subject *)
               let rec back j =
                 if j < 0 then None
                 else
                   match String.lowercase_ascii arr.(j) with
                   | "shall" | "not" | "be" -> back (j - 1)
                   | word -> Some word
               in
               back (i - 2)
             | _ -> None
           in
           match subject with
           | Some subject -> occs := (i, partner, subject) :: !occs
           | None -> ()
         end)
    arr;
  List.rev_map
    (fun (i, partner, subject) ->
       let swapped =
         String.concat " "
           (List.mapi
              (fun j tok ->
                 if j = i then
                   let _, punct = strip_punct tok in
                   partner ^ punct
                 else tok)
              tokens)
       in
       (swapped, subject))
    !occs

let antonym_law sentence =
  let config = Translate.default_config () in
  List.concat_map
    (fun (swapped, subject) ->
       match
         ( Translate.formula_of_sentence config sentence,
           Translate.formula_of_sentence config swapped )
       with
       | exception Parser.Error msg ->
         [ div "antonym" "swap made %S ungrammatical: %s" swapped msg ]
       | f, f' ->
         let expected =
           Ltl.map_props
             (fun p ->
                if p = subject then Ltl.neg (Ltl.prop p) else Ltl.prop p)
             f
         in
         if Lint.equivalent f' expected then []
         else
           [
             div "antonym"
               "swapping the %s adjective should negate only [%s]: %s \
                translates to %s, expected %s"
               subject subject swapped (fstr f') (fstr expected);
           ])
    (adjective_occurrences sentence)

let doc_oracles sentences =
  let config = Translate.default_config () in
  match Translate.specification config sentences with
  | exception Parser.Error msg ->
    [ div "translate" "generated document failed to parse: %s" msg ]
  | result ->
    let formulas =
      List.map (fun r -> r.Translate.formula) result.Translate.requirements
    in
    let determinism =
      let again = Translate.specification config sentences in
      let formulas' =
        List.map (fun r -> r.Translate.formula) again.Translate.requirements
      in
      if List.length formulas = List.length formulas'
      && List.for_all2 Ltl.equal formulas formulas'
      then []
      else [ div "translate" "translation is not deterministic" ]
    in
    let analysis = Partition.of_requirements formulas in
    let partition = analysis.Partition.partition in
    determinism
    @ List.concat_map antonym_law sentences
    @ nnf_invariance formulas
    @ engines_differential ~inputs:partition.Partition.inputs
        ~outputs:partition.Partition.outputs ~template:true formulas

(* ------------------------------------------------------------------ *)
(* Time abstraction                                                   *)

(* Independent re-implementation of the most-restrictive merge, so the
   oracle judges the solver against the declared constraints rather
   than against the library's own merge. *)
let merged_domains thetas domains =
  List.fold_left2
    (fun acc theta domain ->
       match List.assoc_opt theta acc with
       | None -> (theta, domain) :: acc
       | Some seen ->
         let merged =
           match seen, domain with
           | Timeabs.Exact, _ | _, Timeabs.Exact -> Timeabs.Exact
           | Timeabs.Nonnegative, Timeabs.Nonnegative -> Timeabs.Nonnegative
           | Timeabs.Nonpositive, Timeabs.Nonpositive -> Timeabs.Nonpositive
           | Timeabs.Nonnegative, Timeabs.Nonpositive
           | Timeabs.Nonpositive, Timeabs.Nonnegative -> Timeabs.Exact
         in
         (theta, merged) :: List.remove_assoc theta acc)
    [] thetas domains

let domain_name = function
  | Timeabs.Nonnegative -> "nonneg"
  | Timeabs.Nonpositive -> "nonpos"
  | Timeabs.Exact -> "exact"

let check_solution ~name ~thetas ~domains ~budget (sol : Timeabs.solution) =
  let checks = ref [] in
  let add d = checks := d :: !checks in
  let merged = merged_domains thetas domains in
  if sol.Timeabs.divisor < 1 then
    add (div "timeabs" "%s: divisor %d < 1" name sol.Timeabs.divisor);
  let d = sol.Timeabs.divisor in
  let covered =
    List.map (fun r -> r.Timeabs.theta) sol.Timeabs.rewrites
  in
  List.iter
    (fun (theta, _) ->
       if not (List.mem theta covered) then
         add (div "timeabs" "%s: no rewrite for theta %d" name theta))
    merged;
  let err_sum = ref 0 in
  let x_sum = ref 0 in
  List.iter
    (fun r ->
       let { Timeabs.theta; theta'; delta } = r in
       err_sum := !err_sum + abs delta;
       x_sum := !x_sum + theta';
       if theta <> (theta' * d) + delta then
         add
           (div "timeabs" "%s: %d <> %d*%d + %d" name theta theta' d delta);
       if delta <= -d || delta >= d then
         add (div "timeabs" "%s: |delta %d| >= divisor %d" name delta d);
       (* The θ' >= 1 law: a zero θ' rewrites X^θ φ to φ, silently
          collapsing a timed obligation (the historical bug). *)
       if theta' < 1 then
         add
           (div "timeabs" "%s: theta %d collapsed to %d X operators" name
              theta theta');
       match List.assoc_opt theta merged with
       | None -> add (div "timeabs" "%s: rewrite for unknown theta %d" name theta)
       | Some dom ->
         let ok =
           match dom with
           | Timeabs.Exact -> delta = 0
           | Timeabs.Nonnegative -> delta >= 0
           | Timeabs.Nonpositive -> delta <= 0
         in
         if not ok then
           add
             (div "timeabs" "%s: delta %d for theta %d violates %s domain"
                name delta theta (domain_name dom)))
    sol.Timeabs.rewrites;
  if !err_sum > budget then
    add (div "timeabs" "%s: total error %d exceeds budget %d" name !err_sum
           budget);
  if !err_sum <> sol.Timeabs.error_total then
    add
      (div "timeabs" "%s: reported error_total %d, actual %d" name
         sol.Timeabs.error_total !err_sum);
  if !x_sum <> sol.Timeabs.x_total then
    add
      (div "timeabs" "%s: reported x_total %d, actual %d" name
         sol.Timeabs.x_total !x_sum);
  List.rev !checks

let timeabs_oracles ~buggy ~thetas ~domains ~budget =
  match Timeabs.problem_checked ~budget ~domains thetas with
  | Error _ -> []
  | Ok prob ->
    let analytic = Timeabs.solve_analytic ~allow_zero_theta:buggy prob in
    let smt = Timeabs.solve_smt ~allow_zero_theta:buggy prob in
    let gcd = Timeabs.gcd_solution prob.Timeabs.thetas in
    check_solution ~name:"analytic" ~thetas ~domains ~budget analytic
    @ check_solution ~name:"smt" ~thetas ~domains ~budget smt
    @ (if
        analytic.Timeabs.x_total <> smt.Timeabs.x_total
        || analytic.Timeabs.error_total <> smt.Timeabs.error_total
       then
         [
           div "timeabs"
             "analytic optimum (x=%d, err=%d) differs from SMT optimum \
              (x=%d, err=%d)"
             analytic.Timeabs.x_total analytic.Timeabs.error_total
             smt.Timeabs.x_total smt.Timeabs.error_total;
         ]
       else [])
    @
    (* The exact GCD rewriting is always feasible, so the optimum can
       never need more X operators than it does. *)
    if analytic.Timeabs.x_total > gcd.Timeabs.x_total then
      [
        div "timeabs"
          "analytic x_total %d worse than the GCD baseline %d"
          analytic.Timeabs.x_total gcd.Timeabs.x_total;
      ]
    else []

(* ------------------------------------------------------------------ *)
(* Partition inference and adjustment                                 *)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let partition_oracles ~formulas ~to_input ~to_output =
  match Partition.of_requirements formulas with
  | exception Invalid_argument msg ->
    [ div "partition" "of_requirements violated its postcondition: %s" msg ]
  | analysis ->
    let p = analysis.Partition.partition in
    let known = p.Partition.inputs @ p.Partition.outputs in
    let checks = ref [] in
    let add d = checks := d :: !checks in
    let all_props =
      List.sort_uniq compare (List.concat_map Ltl.props formulas)
    in
    if not (subset all_props known) then
      add
        (div "partition" "propositions left unclassified: %s"
           (String.concat ", "
              (List.filter (fun q -> not (List.mem q known)) all_props)));
    let overlap = List.filter (fun q -> List.mem q to_output) to_input in
    (if overlap <> [] then
       match Partition.adjust p ~to_input ~to_output () with
       | exception Invalid_argument _ -> ()
       | _ ->
         add
           (div "partition"
              "overlapping move lists (%s) were accepted"
              (String.concat ", " overlap))
     else
       match Partition.adjust p ~to_input ~to_output () with
       | exception Invalid_argument msg ->
         add (div "partition" "disjoint adjustment rejected: %s" msg)
       | q ->
         let bad =
           List.filter (fun x -> List.mem x q.Partition.outputs)
             q.Partition.inputs
         in
         if bad <> [] then
           add
             (div "partition" "adjusted partition overlaps on %s"
                (String.concat ", " bad));
         List.iter
           (fun x ->
              if List.mem x known && not (List.mem x q.Partition.inputs)
              then add (div "partition" "%s not moved to inputs" x))
           to_input;
         List.iter
           (fun x ->
              if List.mem x known && not (List.mem x q.Partition.outputs)
              then add (div "partition" "%s not moved to outputs" x))
           to_output;
         (match Partition.adjust q ~to_input ~to_output () with
          | exception Invalid_argument msg ->
            add (div "partition" "re-adjustment rejected: %s" msg)
          | q' ->
            if
              q'.Partition.inputs <> q.Partition.inputs
              || q'.Partition.outputs <> q.Partition.outputs
            then add (div "partition" "adjustment is not idempotent")));
    List.rev !checks

(* ------------------------------------------------------------------ *)

let check ?(buggy_timeabs = false) case =
  match case with
  | Case.Ltl_spec { inputs; outputs; formulas; template } ->
    nnf_invariance formulas
    @ engines_differential ~inputs ~outputs ~template formulas
  | Case.Doc sentences -> doc_oracles sentences
  | Case.Timeabs { thetas; domains; budget } ->
    timeabs_oracles ~buggy:buggy_timeabs ~thetas ~domains ~budget
  | Case.Partition_adjust { formulas; to_input; to_output } ->
    partition_oracles ~formulas ~to_input ~to_output
