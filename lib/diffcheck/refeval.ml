open Speccc_logic

let fold_pos w i =
  let n = Trace.length w in
  if i < n then i
  else
    let start = Trace.loop_start w in
    start + ((i - start) mod (n - start))

let exists_in lo hi p =
  let rec go j = j <= hi && (p j || go (j + 1)) in
  go lo

(* Direct unfolded semantics: each temporal operator quantifies over
   the next [length w + 1] positions, which covers one full loop
   period from any starting point.  No fixpoint, no memo table —
   deliberately nothing in common with Trace's evaluator. *)
let rec holds_at w i f =
  let i = fold_pos w i in
  let horizon = Trace.length w in
  match f with
  | Ltl.True -> true
  | Ltl.False -> false
  | Ltl.Prop p ->
    (match List.assoc_opt p (Trace.letter_at w i) with
     | Some b -> b
     | None -> false)
  | Ltl.Not g -> not (holds_at w i g)
  | Ltl.And (a, b) -> holds_at w i a && holds_at w i b
  | Ltl.Or (a, b) -> holds_at w i a || holds_at w i b
  | Ltl.Implies (a, b) -> (not (holds_at w i a)) || holds_at w i b
  | Ltl.Iff (a, b) -> holds_at w i a = holds_at w i b
  | Ltl.Next g -> holds_at w (i + 1) g
  | Ltl.Eventually g ->
    exists_in i (i + horizon) (fun j -> holds_at w j g)
  | Ltl.Always g ->
    not (exists_in i (i + horizon) (fun j -> not (holds_at w j g)))
  | Ltl.Until (a, b) ->
    exists_in i (i + horizon) (fun j ->
        holds_at w j b
        && not (exists_in i (j - 1) (fun k -> not (holds_at w k a))))
  | Ltl.Weak_until (a, b) ->
    holds_at w i (Ltl.Until (a, b))
    || not (exists_in i (i + horizon) (fun j -> not (holds_at w j a)))
  | Ltl.Release (a, b) ->
    (* b must hold at every j unless some strictly earlier a releases *)
    not
      (exists_in i (i + horizon) (fun j ->
           (not (holds_at w j b))
           && not (exists_in i (j - 1) (fun k -> holds_at w k a))))

let holds w f = holds_at w 0 f

let values w f = Array.init (Trace.length w) (fun i -> holds_at w i f)

(* ------------------------------------------------------------------ *)
(* Model enumeration                                                  *)

let letters_of_mask props total mask =
  let p = List.length props in
  List.init total (fun pos ->
      List.mapi (fun k prop -> (prop, mask lsr ((pos * p) + k) land 1 = 1))
        props)

let find_model ~props ~max_positions f =
  let p = List.length props in
  let result = ref None in
  (try
     for total = 1 to max_positions do
       let assignments = 1 lsl (p * total) in
       for mask = 0 to assignments - 1 do
         let letters = letters_of_mask props total mask in
         for loop_len = 1 to total do
           let prefix_len = total - loop_len in
           let prefix = List.filteri (fun i _ -> i < prefix_len) letters in
           let loop = List.filteri (fun i _ -> i >= prefix_len) letters in
           let w = Trace.make ~prefix ~loop in
           if holds w f then begin
             result := Some w;
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  !result
