(** Deterministic pseudo-random stream for the fuzzing subsystem.

    A self-contained splitmix64 generator: the same seed yields the
    same case sequence on every platform and in every domain, which is
    what makes fuzz findings replayable by seed and the CI smoke run
    stable.  Deliberately not [Random] — the fuzzer must never share
    state with anything else in the process. *)

type t

val make : int -> t
(** A fresh stream from a seed (any int, including 0). *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]; used to
    give every generated case its own stream so inserting a draw in
    one generator does not shift every later case. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0 .. n-1]; requires [n > 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [lo .. hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** Element drawn with the given relative integer weights (all > 0). *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs]: [k] elements drawn without replacement (all of
    [xs], order shuffled, when [k >= length xs]). *)
