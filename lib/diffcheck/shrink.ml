open Speccc_logic

let children = function
  | Ltl.True | Ltl.False | Ltl.Prop _ -> []
  | Ltl.Not f | Ltl.Next f | Ltl.Eventually f | Ltl.Always f -> [ f ]
  | Ltl.And (a, b) | Ltl.Or (a, b) | Ltl.Implies (a, b) | Ltl.Iff (a, b)
  | Ltl.Until (a, b) | Ltl.Weak_until (a, b) | Ltl.Release (a, b) ->
    [ a; b ]

(* Every list obtained by deleting one element, plus both halves —
   the classic ddmin step ladder, cheap enough to enumerate. *)
let list_shrinks xs =
  let n = List.length xs in
  if n = 0 then []
  else
    let without i = List.filteri (fun j _ -> j <> i) xs in
    let singles = List.init n without in
    let halves =
      if n >= 2 then
        [
          List.filteri (fun j _ -> j < n / 2) xs;
          List.filteri (fun j _ -> j >= n / 2) xs;
        ]
      else []
    in
    halves @ singles

(* Replace the [i]-th formula by each of its immediate subformulas. *)
let formula_shrinks formulas =
  List.concat
    (List.mapi
       (fun i f ->
          List.map
            (fun c -> List.mapi (fun j g -> if j = i then c else g) formulas)
            (children f))
       formulas)

let candidates = function
  | Case.Ltl_spec spec ->
    List.map
      (fun formulas -> Case.Ltl_spec { spec with formulas })
      (list_shrinks spec.Case.formulas @ formula_shrinks spec.Case.formulas)
  | Case.Doc sentences ->
    List.map (fun s -> Case.Doc s) (list_shrinks sentences)
  | Case.Timeabs { thetas; domains; budget } ->
    let pairs = List.combine thetas domains in
    let of_pairs ?(budget = budget) pairs =
      Case.Timeabs
        {
          thetas = List.map fst pairs;
          domains = List.map snd pairs;
          budget;
        }
    in
    List.map of_pairs (list_shrinks pairs)
    @ (if budget > 0 then [ of_pairs ~budget:0 pairs;
                            of_pairs ~budget:(budget / 2) pairs;
                            of_pairs ~budget:(budget - 1) pairs ]
       else [])
    @ List.concat
        (List.mapi
           (fun i (theta, _) ->
              let replace v =
                of_pairs
                  (List.mapi (fun j (t, d) -> if j = i then (v, d) else (t, d))
                     pairs)
              in
              (if theta > 1 then [ replace (theta / 2); replace (theta - 1) ]
               else []))
           pairs)
  | Case.Partition_adjust { formulas; to_input; to_output } ->
    List.map
      (fun formulas -> Case.Partition_adjust { formulas; to_input; to_output })
      (list_shrinks formulas @ formula_shrinks formulas)
    @ List.map
        (fun to_input ->
           Case.Partition_adjust { formulas; to_input; to_output })
        (list_shrinks to_input)
    @ List.map
        (fun to_output ->
           Case.Partition_adjust { formulas; to_input; to_output })
        (list_shrinks to_output)

let shrink ?(buggy_timeabs = false) ?(max_attempts = 150) case divergence =
  let name = divergence.Oracle.oracle in
  let attempts = ref max_attempts in
  let refails candidate =
    if !attempts <= 0 then None
    else begin
      decr attempts;
      List.find_opt
        (fun d -> d.Oracle.oracle = name)
        (Oracle.check ~buggy_timeabs candidate)
    end
  in
  let rec descend current current_div =
    let smaller =
      List.filter
        (fun c -> Case.size c < Case.size current)
        (candidates current)
    in
    let rec first_failing = function
      | [] -> (current, current_div)
      | c :: rest ->
        (match refails c with
         | Some d -> descend c d
         | None -> first_failing rest)
    in
    if !attempts <= 0 then (current, current_div) else first_failing smaller
  in
  descend case divergence
