open Speccc_logic
module Timeabs = Speccc_timeabs.Timeabs

let domain_name = function
  | Timeabs.Nonnegative -> "nonneg"
  | Timeabs.Nonpositive -> "nonpos"
  | Timeabs.Exact -> "exact"

let domain_of_name = function
  | "nonneg" -> Some Timeabs.Nonnegative
  | "nonpos" -> Some Timeabs.Nonpositive
  | "exact" -> Some Timeabs.Exact
  | _ -> None

let fstr f = Ltl_print.to_string ~syntax:Ltl_print.Ascii f

let to_string ?divergence case =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match divergence with
   | Some d ->
     line "# oracle: %s" d.Oracle.oracle;
     (* Evidence may span lines; keep every one a comment. *)
     String.split_on_char '\n' d.Oracle.detail
     |> List.iter (fun l -> line "# %s" l)
   | None -> ());
  (match case with
   | Case.Ltl_spec { inputs; outputs; formulas; template } ->
     line "kind: ltl_spec";
     line "template: %b" template;
     line "inputs: %s" (String.concat " " inputs);
     line "outputs: %s" (String.concat " " outputs);
     List.iter (fun f -> line "formula: %s" (fstr f)) formulas
   | Case.Doc sentences ->
     line "kind: doc";
     List.iter (fun s -> line "sentence: %s" s) sentences
   | Case.Timeabs { thetas; domains; budget } ->
     line "kind: timeabs";
     line "budget: %d" budget;
     List.iter2
       (fun theta domain -> line "theta: %d %s" theta (domain_name domain))
       thetas domains
   | Case.Partition_adjust { formulas; to_input; to_output } ->
     line "kind: partition";
     line "to_input: %s" (String.concat " " to_input);
     line "to_output: %s" (String.concat " " to_output);
     List.iter (fun f -> line "formula: %s" (fstr f)) formulas);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let parse_lines text =
  String.split_on_char '\n' text
  |> List.filter_map (fun raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then None
      else
        match String.index_opt line ':' with
        | None -> Some (Error (Printf.sprintf "malformed line %S" line))
        | Some i ->
          let key = String.trim (String.sub line 0 i) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          Some (Ok (key, value)))
  |> List.fold_left
    (fun acc item ->
       let* acc = acc in
       let* kv = item in
       Ok (kv :: acc))
    (Ok [])
  |> Result.map List.rev

let words = function
  | "" -> []
  | s -> String.split_on_char ' ' s |> List.filter (( <> ) "")

let values key kvs =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) kvs

let value key kvs =
  match values key kvs with
  | [ v ] -> Ok v
  | [] -> Error (Printf.sprintf "missing %s" key)
  | _ -> Error (Printf.sprintf "duplicate %s" key)

let parse_formulas kvs =
  List.fold_left
    (fun acc text ->
       let* acc = acc in
       match Ltl_parse.formula text with
       | f -> Ok (f :: acc)
       | exception Ltl_parse.Error msg ->
         Error (Printf.sprintf "bad formula %S: %s" text msg))
    (Ok []) (values "formula" kvs)
  |> Result.map List.rev

let of_string text =
  let* kvs = parse_lines text in
  let* kind = value "kind" kvs in
  match kind with
  | "ltl_spec" ->
    let* template = value "template" kvs in
    let* template =
      match bool_of_string_opt template with
      | Some b -> Ok b
      | None -> Error "template must be true or false"
    in
    let* inputs = value "inputs" kvs in
    let* outputs = value "outputs" kvs in
    let* formulas = parse_formulas kvs in
    Ok
      (Case.Ltl_spec
         { inputs = words inputs; outputs = words outputs; formulas;
           template })
  | "doc" -> Ok (Case.Doc (values "sentence" kvs))
  | "timeabs" ->
    let* budget = value "budget" kvs in
    let* budget =
      match int_of_string_opt budget with
      | Some b -> Ok b
      | None -> Error "budget must be an integer"
    in
    let* pairs =
      List.fold_left
        (fun acc entry ->
           let* acc = acc in
           match words entry with
           | [ theta; domain ] ->
             (match int_of_string_opt theta, domain_of_name domain with
              | Some t, Some d -> Ok ((t, d) :: acc)
              | _ -> Error (Printf.sprintf "bad theta entry %S" entry))
           | _ -> Error (Printf.sprintf "bad theta entry %S" entry))
        (Ok []) (values "theta" kvs)
      |> Result.map List.rev
    in
    Ok
      (Case.Timeabs
         { thetas = List.map fst pairs; domains = List.map snd pairs;
           budget })
  | "partition" ->
    let* to_input = value "to_input" kvs in
    let* to_output = value "to_output" kvs in
    let* formulas = parse_formulas kvs in
    Ok
      (Case.Partition_adjust
         { formulas; to_input = words to_input; to_output = words to_output })
  | other -> Error (Printf.sprintf "unknown kind %S" other)

(* ------------------------------------------------------------------ *)

let write ~dir ~name ?divergence case =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".corpus") in
  let oc = open_out path in
  output_string oc (to_string ?divergence case);
  close_out oc;
  path

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".corpus")
    |> List.sort compare
    |> List.map (fun f ->
        let path = Filename.concat dir f in
        let ic = open_in path in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        (f, of_string text))
