(** The regression corpus: divergent cases persisted as replayable
    text files.

    Every divergence the fuzzer finds is shrunk and written under a
    corpus directory ([test/corpus/] in this repository) in a
    line-based [key: value] format; formulas use the parseable Ascii
    syntax ({!Speccc_logic.Ltl_print}/{!Speccc_logic.Ltl_parse}
    round-trip).  [dune runtest] replays every entry through
    {!Oracle.check} so a fixed bug stays fixed.

    Entries record the oracle that fired and the evidence as comments,
    so a corpus file is also a readable bug report. *)

val to_string : ?divergence:Oracle.divergence -> Case.t -> string
(** Serialize; the optional divergence is recorded in header
    comments. *)

val of_string : string -> (Case.t, string) result
(** Parse a corpus entry; [Error] describes the first offending
    line. *)

val write :
  dir:string -> name:string -> ?divergence:Oracle.divergence -> Case.t ->
  string
(** Write [<dir>/<name>.corpus] (creating [dir] if needed) and return
    the path. *)

val load_dir : string -> (string * (Case.t, string) result) list
(** All [*.corpus] entries of a directory, sorted by file name;
    missing directory means no entries. *)
