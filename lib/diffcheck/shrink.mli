(** Delta-debugging of divergent cases.

    Greedy descent: generate structurally smaller candidate cases
    (dropping requirements, sentences, θ entries or move-list entries;
    replacing formulas by their immediate subformulas; lowering θ
    values and budgets) and keep any candidate on which the {e same
    oracle} still reports a divergence, until a fixpoint.  Oracle
    re-runs are capped so shrinking a case that drives the synthesis
    engines stays affordable. *)

val list_shrinks : 'a list -> 'a list list
(** The generic ddmin list ladder: both halves of the list, then every
    single-element deletion, largest candidates first.  Shared with the
    chaos explorer's schedule minimizer. *)

val shrink :
  ?buggy_timeabs:bool ->
  ?max_attempts:int ->
  Case.t ->
  Oracle.divergence ->
  Case.t * Oracle.divergence
(** [shrink case d] minimizes [case] while [Oracle.check] keeps
    reporting a divergence from the same oracle as [d].
    [max_attempts] (default 150) bounds the number of oracle re-runs;
    [buggy_timeabs] is threaded through to {!Oracle.check}.  Returns
    the smallest failing case found and its divergence. *)
