open Speccc_logic
open Speccc_timeabs
module Patterns = Speccc_patterns.Patterns

(* ------------------------------------------------------------------ *)
(* Formulas                                                           *)

let literal rng props =
  let p = Ltl.prop (Prng.pick rng props) in
  if Prng.bool rng then p else Ltl.neg p

let rec formula rng ~props ~depth =
  if depth <= 0 || Prng.chance rng 0.2 then
    if Prng.chance rng 0.05 then (if Prng.bool rng then Ltl.tt else Ltl.ff)
    else literal rng props
  else
    let sub () = formula rng ~props ~depth:(depth - 1) in
    match
      Prng.pick_weighted rng
        [ (3, `And); (3, `Or); (2, `Implies); (1, `Iff); (2, `Not);
          (2, `Next); (2, `Eventually); (2, `Always); (1, `Until);
          (1, `Weak_until); (1, `Release) ]
    with
    | `And -> Ltl.conj (sub ()) (sub ())
    | `Or -> Ltl.disj (sub ()) (sub ())
    | `Implies -> Ltl.implies (sub ()) (sub ())
    | `Iff -> Ltl.iff (sub ()) (sub ())
    | `Not -> Ltl.neg (sub ())
    | `Next -> Ltl.next (sub ())
    | `Eventually -> Ltl.eventually (sub ())
    | `Always -> Ltl.always (sub ())
    | `Until -> Ltl.until (sub ()) (sub ())
    | `Weak_until -> Ltl.weak_until (sub ()) (sub ())
    | `Release -> Ltl.release (sub ()) (sub ())

(* ------------------------------------------------------------------ *)
(* LTL specifications                                                 *)

let input_pool = [ "press"; "req"; "lost"; "override" ]
let output_pool = [ "grant"; "alarm"; "run"; "inflate" ]

(* One Globally-scope template instance: guards over inputs (falling
   back to outputs in closed specs), responses over outputs.  This is
   the translator fragment, where the symbolic engine's Inconsistent
   verdicts are complete and the differential oracle may trust them. *)
let template_formula rng ~inputs ~outputs =
  let guard_props = if inputs = [] then outputs else inputs in
  let guard rng =
    if Prng.chance rng 0.25 then
      Ltl.conj (literal rng guard_props) (literal rng guard_props)
    else literal rng guard_props
  in
  match
    Prng.pick_weighted rng
      [ (3, `Universality_impl); (2, `Delayed_response); (2, `Response);
        (1, `Absence); (1, `Universality); (1, `Existence);
        (1, `Precedence) ]
  with
  | `Universality_impl ->
    Ltl.always (Ltl.implies (guard rng) (literal rng outputs))
  | `Delayed_response ->
    let n = Prng.range rng 1 3 in
    Ltl.always (Ltl.implies (guard rng) (Ltl.next_n n (literal rng outputs)))
  | `Response ->
    Patterns.instantiate Patterns.Response ~p:(guard rng)
      ~s:(literal rng outputs) Patterns.Globally
  | `Absence ->
    Patterns.instantiate Patterns.Absence ~p:(literal rng outputs)
      Patterns.Globally
  | `Universality ->
    Patterns.instantiate Patterns.Universality ~p:(literal rng outputs)
      Patterns.Globally
  | `Existence ->
    Patterns.instantiate Patterns.Existence ~p:(literal rng outputs)
      Patterns.Globally
  | `Precedence ->
    Patterns.instantiate Patterns.Precedence ~p:(literal rng outputs)
      ~s:(guard rng) Patterns.Globally

let ltl_spec rng : Case.ltl_spec =
  let closed = Prng.chance rng 0.3 in
  let inputs =
    if closed then [] else Prng.sample rng (Prng.range rng 1 2) input_pool
  in
  let outputs = Prng.sample rng (Prng.range rng 1 3) output_pool in
  let template = Prng.chance rng 0.6 in
  let n_reqs = Prng.range rng 1 3 in
  let formulas =
    List.init n_reqs (fun _ ->
        if template then template_formula rng ~inputs ~outputs
        else formula rng ~props:(inputs @ outputs) ~depth:(Prng.range rng 2 4))
  in
  { inputs; outputs; formulas; template }

(* ------------------------------------------------------------------ *)
(* Structured-English documents                                       *)

let subjects =
  [ "pump"; "cuff"; "alarm"; "monitor"; "battery"; "button"; "robot";
    "signal" ]

let verbs = [ "run"; "start"; "stop"; "trigger"; "sound"; "reset" ]

(* Absorbing pairs only (Antonym.defaults): both members reduce to the
   bare subject proposition, which the antonym-merge oracle relies
   on.  (positive, negative) *)
let absorbing_pairs =
  [ ("available", "unavailable"); ("enabled", "disabled");
    ("active", "inactive"); ("on", "off"); ("high", "low");
    ("valid", "invalid") ]

let sentence rng =
  let subj () = Prng.pick rng subjects in
  let verb () = Prng.pick rng verbs in
  let adj () =
    let pos, neg = Prng.pick rng absorbing_pairs in
    if Prng.bool rng then pos else neg
  in
  (* Two distinct subjects for condition/response sentences, so the
     conditioning proposition differs from the concluded one. *)
  let s1 = subj () in
  let s2 =
    let rec fresh () = let s = subj () in if s = s1 then fresh () else s in
    fresh ()
  in
  match Prng.int rng 12 with
  | 0 -> Printf.sprintf "The %s shall %s." s1 (verb ())
  | 1 -> Printf.sprintf "The %s shall not %s." s1 (verb ())
  | 2 -> Printf.sprintf "If the %s is %s, the %s shall %s." s1 (adj ()) s2
           (verb ())
  | 3 -> Printf.sprintf "When the %s is %s, the %s shall %s in %d seconds."
           s1 (adj ()) s2 (verb ()) (Prng.range rng 1 5)
  | 4 -> Printf.sprintf "Whenever the %s is %s, the %s shall be %s." s1
           (adj ()) s2 (adj ())
  | 5 -> Printf.sprintf "The %s will %s." s1 (verb ())
  | 6 -> Printf.sprintf "Eventually the %s shall %s." s1 (verb ())
  | 7 -> Printf.sprintf "The %s shall %s until the %s is %s." s1 (verb ())
           s2 (adj ())
  | 8 -> Printf.sprintf "The %s shall be %s before the %s is %s." s1 (adj ())
           s2 (adj ())
  | 9 -> Printf.sprintf "Always the %s shall be %s." s1 (adj ())
  | 10 -> Printf.sprintf "If the %s is %s, and the %s is %s, the %s shall %s."
            s1 (adj ()) s2 (adj ())
            (let rec fresh () =
               let s = subj () in if s = s1 || s = s2 then fresh () else s in
             fresh ())
            (verb ())
  | _ -> Printf.sprintf "The %s shall not be %s." s1 (adj ())

let doc rng = List.init (Prng.range rng 2 4) (fun _ -> sentence rng)

(* ------------------------------------------------------------------ *)
(* Time abstraction                                                   *)

let timeabs_case rng =
  let n = Prng.range rng 1 4 in
  let thetas = List.init n (fun _ -> Prng.range rng 1 200) in
  let thetas =
    (* Deliberate duplicates: the domain-merge path is under test. *)
    if n >= 2 && Prng.chance rng 0.3 then List.hd thetas :: List.tl thetas
      @ [ List.hd thetas ]
    else thetas
  in
  let domain rng =
    Prng.pick rng [ Timeabs.Nonnegative; Timeabs.Nonpositive; Timeabs.Exact ]
  in
  let domains = List.map (fun _ -> domain rng) thetas in
  let budget = Prng.int rng (List.fold_left max 1 thetas + 1) in
  Case.Timeabs { thetas; domains; budget }

(* ------------------------------------------------------------------ *)
(* Partition adjustment                                               *)

let partition_case rng =
  let props = Prng.sample rng (Prng.range rng 3 5) (input_pool @ output_pool) in
  let n_reqs = Prng.range rng 2 4 in
  let formulas =
    List.init n_reqs (fun _ ->
        Ltl.always
          (Ltl.implies (literal rng props)
             (Ltl.next_n (Prng.int rng 2) (literal rng props))))
  in
  let to_input = Prng.sample rng (Prng.int rng 3) props in
  let to_output =
    (* Mostly disjoint from [to_input]; sometimes overlapping on
       purpose — the oracle then expects Invalid_argument. *)
    let pool =
      if Prng.chance rng 0.2 then props
      else List.filter (fun p -> not (List.mem p to_input)) props
    in
    if pool = [] then [] else Prng.sample rng (Prng.int rng 3) pool
  in
  Case.Partition_adjust { formulas; to_input; to_output }

let case rng =
  match
    Prng.pick_weighted rng
      [ (5, `Ltl); (3, `Doc); (3, `Timeabs); (2, `Partition) ]
  with
  | `Ltl -> Case.Ltl_spec (ltl_spec rng)
  | `Doc -> Case.Doc (doc rng)
  | `Timeabs -> timeabs_case rng
  | `Partition -> partition_case rng
