(** Naive reference semantics for LTL over lassos.

    An independent implementation of the lasso semantics that
    {!Speccc_logic.Trace} computes by fixpoint: here every temporal
    operator is decided by direct quantification over the positions
    [i .. i + length w] (one full period past the stored positions,
    which is enough — suffix states repeat with the loop).  Slower by
    design and sharing no code with [Trace], so the two can be pitted
    against each other position by position. *)

val holds_at : Speccc_logic.Trace.t -> int -> Speccc_logic.Ltl.t -> bool
(** [holds_at w i f]: does [w, i ⊨ f] under the unfolded semantics?
    [i] beyond the stored length folds into the loop. *)

val holds : Speccc_logic.Trace.t -> Speccc_logic.Ltl.t -> bool
(** [holds_at w 0]. *)

val values : Speccc_logic.Trace.t -> Speccc_logic.Ltl.t -> bool array
(** Truth at every stored position — same contract as
    {!Speccc_logic.Trace.values}, computed the slow way. *)

val find_model :
  props:string list ->
  max_positions:int ->
  Speccc_logic.Ltl.t ->
  Speccc_logic.Trace.t option
(** Exhaustive lasso enumeration: every prefix/loop split of every
    total length [1 .. max_positions], every truth assignment over
    [props].  Returns the first lasso the {e naive} semantics accepts.
    [None] means no model within the bound — not unsatisfiability.
    Cost is [2^(|props| · max_positions)]; keep both small. *)
