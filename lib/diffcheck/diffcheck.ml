type finding = {
  index : int;
  case : Case.t;
  shrunk : Case.t;
  divergence : Oracle.divergence;
  corpus_file : string option;
}

type summary = {
  total : int;
  by_kind : (string * int) list;
  findings : finding list;
}

let kind_name = function
  | Case.Ltl_spec _ -> "ltl_spec"
  | Case.Doc _ -> "doc"
  | Case.Timeabs _ -> "timeabs"
  | Case.Partition_adjust _ -> "partition"

let run ?(buggy_timeabs = false) ?corpus_dir ?progress ~n ~seed () =
  let master = Prng.make seed in
  let counts = Hashtbl.create 4 in
  let findings = ref [] in
  for index = 0 to n - 1 do
    (* One forked stream per case: adding a draw to one generator
       never shifts the cases after it. *)
    let rng = Prng.split master in
    let case = Gen.case rng in
    (match progress with Some f -> f index case | None -> ());
    let kind = kind_name case in
    Hashtbl.replace counts kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind));
    match Oracle.check ~buggy_timeabs case with
    | [] -> ()
    | first :: _ ->
      let shrunk, divergence = Shrink.shrink ~buggy_timeabs case first in
      let corpus_file =
        Option.map
          (fun dir ->
             Corpus.write ~dir
               ~name:(Printf.sprintf "divergence-seed%d-case%04d" seed index)
               ~divergence shrunk)
          corpus_dir
      in
      findings := { index; case; shrunk; divergence; corpus_file } :: !findings
  done;
  {
    total = n;
    by_kind =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
      |> List.sort compare;
    findings = List.rev !findings;
  }

let replay ?(buggy_timeabs = false) dir =
  List.map
    (fun (file, parsed) ->
       match parsed with
       | Error msg -> (file, Error msg)
       | Ok case -> (file, Ok (Oracle.check ~buggy_timeabs case)))
    (Corpus.load_dir dir)

let pp_finding ppf { index; shrunk; divergence; corpus_file; _ } =
  Format.fprintf ppf "@[<v>case %d diverged: %a@,%a" index
    Oracle.pp_divergence divergence Case.pp shrunk;
  (match corpus_file with
   | Some path -> Format.fprintf ppf "@,saved to %s" path
   | None -> ());
  Format.fprintf ppf "@]"

let pp_summary ppf { total; by_kind; findings } =
  Format.fprintf ppf "@[<v>%d cases (%s): %d divergence%s" total
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%d %s" v k) by_kind))
    (List.length findings)
    (if List.length findings = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_finding f) findings;
  Format.fprintf ppf "@]"
