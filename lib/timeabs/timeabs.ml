open Speccc_logic

type delta_domain =
  | Nonnegative
  | Nonpositive
  | Exact

type problem = {
  thetas : int list;
  budget : int;
  domains : delta_domain list;
}

type rewrite = {
  theta : int;
  theta' : int;
  delta : int;
}

type solution = {
  divisor : int;
  rewrites : rewrite list;
  x_total : int;
  error_total : int;
}

(* Two constraints on the same θ must both hold, so duplicate θ merge
   to their most restrictive domain: [Exact] dominates, equal signs
   keep the sign, and conflicting [Nonnegative]/[Nonpositive] leave
   only Δ = 0. *)
let merge_domains a b =
  match a, b with
  | Exact, _ | _, Exact -> Exact
  | Nonnegative, Nonnegative -> Nonnegative
  | Nonpositive, Nonpositive -> Nonpositive
  | Nonnegative, Nonpositive | Nonpositive, Nonnegative -> Exact

let build ~budget thetas domains =
  (* Merge duplicate θ (most-restrictive domain wins), sort descending. *)
  let pairs =
    List.fold_left
      (fun acc (theta, domain) ->
         match List.assoc_opt theta acc with
         | Some seen ->
           (theta, merge_domains seen domain)
           :: List.remove_assoc theta acc
         | None -> (theta, domain) :: acc)
      []
      (List.combine thetas domains)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  { thetas = List.map fst pairs; budget; domains = List.map snd pairs }

let problem_checked ?budget ?domains thetas =
  let module Runtime = Speccc_runtime.Runtime in
  let invalid message =
    Error (Runtime.invalid_input ~stage:"timeabs" message)
  in
  if thetas = [] then invalid "empty Θ: no timing constants to abstract"
  else if List.exists (fun t -> t <= 0) thetas then
    invalid
      (Printf.sprintf "non-positive θ = %d: timing constants must be >= 1"
         (List.find (fun t -> t <= 0) thetas))
  else
    let max_theta = List.fold_left max 0 thetas in
    let budget = match budget with Some b -> b | None -> max_theta in
    if budget < 0 then
      invalid (Printf.sprintf "negative error budget %d" budget)
    else
      match domains with
      | Some ds when List.length ds <> List.length thetas ->
        invalid
          (Printf.sprintf "domain/θ length mismatch: %d domains for %d θ"
             (List.length ds) (List.length thetas))
      | _ ->
        let domains =
          match domains with
          | None -> List.map (fun _ -> Nonnegative) thetas
          | Some ds -> ds
        in
        Ok (build ~budget thetas domains)

let problem ?budget ?domains thetas =
  match problem_checked ?budget ?domains thetas with
  | Ok problem -> problem
  | Error error ->
    invalid_arg (Speccc_runtime.Runtime.to_string error)

let thetas_of_formulas formulas =
  List.concat_map Ltl.next_chains formulas
  |> List.sort_uniq (fun a b -> compare b a)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let gcd_solution thetas =
  if thetas = [] then invalid_arg "Timeabs.gcd_solution: empty Θ";
  let divisor = List.fold_left gcd 0 thetas in
  let rewrites =
    List.map (fun theta -> { theta; theta' = theta / divisor; delta = 0 })
      thetas
  in
  {
    divisor;
    rewrites;
    x_total = List.fold_left (fun acc r -> acc + r.theta') 0 rewrites;
    error_total = 0;
  }

(* Candidate rewrites for one θ under a fixed divisor: the floor choice
   (arrive early, Δ ≥ 0) and the ceiling choice (arrive late, Δ ≤ 0),
   filtered by the domain.  θ' = 0 would rewrite X^θ φ to φ — a timed
   obligation silently becoming immediate — so it is rejected unless
   the caller opted into the legacy collapse ([allow_zero_theta]). *)
let options_for ~allow_zero_theta ~divisor ~domain theta =
  let floor_theta' = theta / divisor in
  let floor_delta = theta - (floor_theta' * divisor) in
  let floor_option = { theta; theta' = floor_theta'; delta = floor_delta } in
  let options =
    if floor_delta = 0 then [ floor_option ]
    else
      let ceil_option =
        { theta; theta' = floor_theta' + 1; delta = floor_delta - divisor }
      in
      match domain with
      | Exact -> []
      | Nonnegative -> [ floor_option ]
      | Nonpositive -> [ ceil_option ]
  in
  if allow_zero_theta then options
  else List.filter (fun o -> o.theta' >= 1) options

(* Lexicographic comparison on (Σθ', Σ|Δ|). *)
let better a b =
  match a, b with
  | None, _ -> false
  | Some _, None -> true
  | Some (x, e, _), Some (x', e', _) -> x < x' || (x = x' && e < e')

let solve_analytic ?(allow_zero_theta = false) prob =
  let max_theta = List.fold_left max 1 prob.thetas in
  let best = ref None in
  for divisor = 1 to max_theta do
    (* Each θ has at most one feasible option per sign domain, so the
       per-divisor assignment is forced; only the budget can rule a
       divisor out. *)
    let rec assemble thetas domains acc_rewrites acc_x acc_err =
      match thetas, domains with
      | [], [] -> Some (acc_x, acc_err, (divisor, List.rev acc_rewrites))
      | theta :: thetas', domain :: domains' ->
        (match options_for ~allow_zero_theta ~divisor ~domain theta with
         | [ option ] ->
           let err = acc_err + abs option.delta in
           if err > prob.budget then None
           else
             assemble thetas' domains' (option :: acc_rewrites)
               (acc_x + option.theta') err
         | _ -> None)
      | _, _ -> None
    in
    let candidate = assemble prob.thetas prob.domains [] 0 0 in
    if better candidate !best then best := candidate
  done;
  match !best with
  | Some (x_total, error_total, (divisor, rewrites)) ->
    { divisor; rewrites; x_total; error_total }
  | None ->
    (* d = 1 is always feasible within any budget (Δ = 0). *)
    gcd_solution prob.thetas

(* --- SMT encoding, per the paper: bit-blasting + lexicographic
   optimization --- *)

let solve_smt ?(allow_zero_theta = false) prob =
  let open Speccc_smt in
  let ctx = Smt.create () in
  let max_theta = List.fold_left max 1 prob.thetas in
  let divisor = Smt.var ctx ~lo:1 ~hi:max_theta in
  let theta'_lo = if allow_zero_theta then 0 else 1 in
  let entries =
    List.map2
      (fun theta domain ->
         let theta' = Smt.var ctx ~lo:theta'_lo ~hi:theta in
         let delta_lo, delta_hi =
           match domain with
           | Nonnegative -> (0, max_theta - 1)
           | Nonpositive -> (-(max_theta - 1), 0)
           | Exact -> (0, 0)
         in
         let delta_lo = min delta_lo 0 and delta_hi = max delta_hi 0 in
         let delta = Smt.var ctx ~lo:delta_lo ~hi:delta_hi in
         (* θ = θ' × d + Δ *)
         Smt.assert_atom ctx
           (Smt.eq ctx (Smt.const ctx theta)
              (Smt.add ctx (Smt.mul ctx theta' divisor) delta));
         (* -d < Δ < d *)
         Smt.assert_atom ctx (Smt.lt ctx delta divisor);
         Smt.assert_atom ctx (Smt.lt ctx (Smt.neg ctx divisor) delta);
         (theta, theta', delta, domain))
      prob.thetas prob.domains
  in
  (* |Δ| is linear within each sign domain. *)
  let abs_delta (_, _, delta, domain) =
    match domain with
    | Nonnegative | Exact -> delta
    | Nonpositive -> Smt.neg ctx delta
  in
  let error_sum = Smt.sum ctx (List.map abs_delta entries) in
  Smt.assert_atom ctx (Smt.le ctx error_sum (Smt.const ctx prob.budget));
  let x_sum = Smt.sum ctx (List.map (fun (_, t', _, _) -> t') entries) in
  match Smt.minimize_lex ctx [ x_sum; error_sum ] with
  | None ->
    (* cannot happen: d = 1 with Δ = 0 is always a model *)
    gcd_solution prob.thetas
  | Some (objectives, model) ->
    let rewrites =
      List.map
        (fun (theta, theta', delta, _) ->
           { theta; theta' = Smt.value model theta';
             delta = Smt.value model delta })
        entries
    in
    let x_total, error_total =
      match objectives with
      | [ x; e ] -> (x, e)
      | _ -> assert false
    in
    { divisor = Smt.value model divisor; rewrites; x_total; error_total }

let apply solution formula =
  let table = Hashtbl.create 8 in
  List.iter
    (fun { theta; theta'; _ } -> Hashtbl.replace table theta theta')
    solution.rewrites;
  let rec chain_length = function
    | Ltl.Next f -> let k, inner = chain_length f in (k + 1, inner)
    | f -> (0, f)
  in
  let rec rewrite = function
    | Ltl.True -> Ltl.True
    | Ltl.False -> Ltl.False
    | Ltl.Prop _ as p -> p
    | Ltl.Not f -> Ltl.neg (rewrite f)
    | Ltl.And (f, g) -> Ltl.conj (rewrite f) (rewrite g)
    | Ltl.Or (f, g) -> Ltl.disj (rewrite f) (rewrite g)
    | Ltl.Implies (f, g) -> Ltl.implies (rewrite f) (rewrite g)
    | Ltl.Iff (f, g) -> Ltl.iff (rewrite f) (rewrite g)
    | Ltl.Next _ as f ->
      let k, inner = chain_length f in
      let k' = match Hashtbl.find_opt table k with Some k' -> k' | None -> k in
      Ltl.next_n k' (rewrite inner)
    | Ltl.Eventually f -> Ltl.eventually (rewrite f)
    | Ltl.Always f -> Ltl.always (rewrite f)
    | Ltl.Until (f, g) -> Ltl.until (rewrite f) (rewrite g)
    | Ltl.Weak_until (f, g) -> Ltl.weak_until (rewrite f) (rewrite g)
    | Ltl.Release (f, g) -> Ltl.release (rewrite f) (rewrite g)
  in
  rewrite formula

let pp_solution ppf s =
  Format.fprintf ppf "@[<v>d = %d,  ΣX = %d,  Σ|Δ| = %d@," s.divisor
    s.x_total s.error_total;
  List.iter
    (fun { theta; theta'; delta } ->
       Format.fprintf ppf "θ=%d -> θ'=%d (Δ=%d)@," theta theta' delta)
    s.rewrites;
  Format.fprintf ppf "@]"
