(** Time counting and abstraction (Sec. IV-E).

    Timing constraints become chains of [X] operators (one [X] per
    second).  To keep synthesis tractable the chains are compressed:
    every length [θi] is rewritten to [θ'i] via a common divisor [d]
    with a bounded arrival error [Δi]:

    {v θi = θ'i × d + Δi,   -d < Δi < d,   d ≥ 1,  θ'i ≥ 1 v}

    θ'i ≥ 1 matters: admitting θ'i = 0 would rewrite [X^θ φ] to [φ],
    silently turning a timed obligation into an immediate one (found
    by the {!Speccc_diffcheck} metamorphic oracle).  The legacy
    collapse is still reachable through [~allow_zero_theta:true] so
    the oracle can demonstrate the bug and the paper's reported Table
    optimum (which contains a θ' = 0 rewrite) can be reproduced.

    subject to a user budget [Σ|Δi| ≤ B] and per-θ sign domains
    (an action may be allowed to arrive only early, only late, or
    either — but not both, which linearizes the objective).  The
    two-objective problem (minimize [Σθ'i], then [Σ|Δi|]) is reduced
    to lexicographic single-objective optimization, solved either by

    - {!solve_smt}: bit-blasting over the bundled SAT solver — the
      paper's strategy ("efficiently solved by modern SMT solvers via
      bit-blasting"), or
    - {!solve_analytic}: exact divisor enumeration (cross-check
      baseline), or
    - {!gcd_solution}: the conservative GCD rewriting the paper
      presents first. *)

type delta_domain =
  | Nonnegative  (** the event may arrive early: Δ ∈ [0, d) *)
  | Nonpositive  (** the event may arrive late: Δ ∈ (-d, 0] *)
  | Exact        (** Δ = 0 *)

type problem = {
  thetas : int list;            (** distinct chain lengths Θ, all > 0 *)
  budget : int;                 (** B ≥ 0 *)
  domains : delta_domain list;  (** same length as [thetas] *)
}

type rewrite = {
  theta : int;
  theta' : int;
  delta : int;
}

type solution = {
  divisor : int;
  rewrites : rewrite list;
  x_total : int;       (** Σ θ'i *)
  error_total : int;   (** Σ |Δi| *)
}

val problem_checked :
  ?budget:int ->
  ?domains:delta_domain list ->
  int list ->
  (problem, Speccc_runtime.Runtime.error) result
(** Build a problem; default budget is [max Θ]; default domain is
    [Nonnegative] for every θ (the Sec. IV-E example).  Duplicate θ
    are merged to their most restrictive domain ([Exact] dominates;
    conflicting [Nonnegative]/[Nonpositive] constraints leave only
    [Exact]), so every declared constraint is honoured.  Returns
    [Error (Invalid_input _)] (stage ["timeabs"]) on an empty or
    non-positive Θ, a negative budget, or a domain/θ length mismatch —
    all of which can arrive straight from user input.  Never raises. *)

val problem : ?budget:int -> ?domains:delta_domain list -> int list -> problem
(** {!problem_checked}, raising [Invalid_argument] with the rendered
    error instead. *)

val thetas_of_formulas : Speccc_logic.Ltl.t list -> int list
(** Distinct maximal [X]-chain lengths over a whole specification,
    descending (the set Θ). *)

val gcd_solution : int list -> solution
(** Divide every chain by [gcd Θ]; always exact ([Δi = 0]).  The paper
    proves this sound: realizability is preserved. *)

val solve_analytic : ?allow_zero_theta:bool -> problem -> solution
(** Exact lexicographic optimum by enumerating divisors (1..max Θ) and
    per-θ floor/ceil choices.  [allow_zero_theta] (default [false])
    re-admits the legacy θ' = 0 collapse — test/reproduction only;
    never enable it in the pipeline. *)

val solve_smt : ?allow_zero_theta:bool -> problem -> solution
(** Same optimum through the bit-blasting SMT encoding; same
    [allow_zero_theta] escape hatch. *)

val apply : solution -> Speccc_logic.Ltl.t -> Speccc_logic.Ltl.t
(** Rewrite every maximal [X]-chain of length [θi] to length [θ'i].
    Chain lengths not covered by the solution are left unchanged. *)

val pp_solution : Format.formatter -> solution -> unit
