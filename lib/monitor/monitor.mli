(** Runtime verification of LTL requirements by formula progression
    (Bacchus–Kabanza rewriting).

    A monitor carries the residual obligation as a formula; each
    observed letter rewrites it.  Reaching [False] means the observed
    prefix is {e bad} — no continuation can satisfy the requirement;
    reaching [True] means every continuation does.  This is the
    "monitor the implementation against the specification" use of the
    translated requirements, complementing synthesis (which builds the
    implementation) and {!Speccc_synthesis.Verify} (which checks a
    model offline).

    Detection is syntactic: progression plus formula simplification.
    [Violated]/[Satisfied] verdicts are always sound; for formulas
    whose residuals the simplifier cannot collapse, a bad prefix may
    be reported late or (for non-safety obligations such as a bare
    [♦p]) not at all. *)

type t

type status =
  | Running of Speccc_logic.Ltl.t   (** the residual obligation *)
  | Violated of int                 (** index of the violating letter *)
  | Satisfied of int                (** index from which anything goes *)

val create : Speccc_logic.Ltl.t -> t

val step : t -> (string * bool) list -> status
(** Feed one letter (absent propositions are false).  Once [Violated]
    or [Satisfied], further steps do not change the verdict. *)

val run : t -> (string * bool) list list -> status
(** Feed a whole prefix. *)

val run_trace : t -> ?unroll:int -> Speccc_logic.Trace.t -> status
(** Feed a lasso word: the prefix, then [unroll] (default 2) copies of
    the loop.  Stops early once the verdict is decided.  A [Violated]
    answer is sound for the infinite word [u·v^ω] (bad prefixes stay
    bad); [Satisfied]/[Running] answers say nothing about liveness
    obligations beyond the unrolled horizon — use
    {!Speccc_logic.Trace.holds} for the exact lasso semantics.  This
    is the replay primitive the certification layer drives synthesized
    controllers with. *)

val status : t -> status
val reset : t -> unit

val progress :
  Speccc_logic.Ltl.t -> (string * bool) list -> Speccc_logic.Ltl.t
(** One progression step as a pure function (exposed for tests and for
    building derived tools). *)
