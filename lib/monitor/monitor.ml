open Speccc_logic

type status =
  | Running of Ltl.t
  | Violated of int
  | Satisfied of int

type t = {
  original : Ltl.t;
  mutable residual : Ltl.t;
  mutable position : int;
  mutable verdict : status;
}

let prop_value letter p =
  match List.assoc_opt p letter with Some b -> b | None -> false

(* Bacchus–Kabanza progression: prog(φ, σ) holds on w iff φ holds on
   σ·w. *)
let rec progress formula letter =
  match formula with
  | Ltl.True -> Ltl.True
  | Ltl.False -> Ltl.False
  | Ltl.Prop p -> if prop_value letter p then Ltl.True else Ltl.False
  | Ltl.Not f -> Ltl.neg (progress f letter)
  | Ltl.And (f, g) -> Ltl.conj (progress f letter) (progress g letter)
  | Ltl.Or (f, g) -> Ltl.disj (progress f letter) (progress g letter)
  | Ltl.Implies (f, g) -> Ltl.implies (progress f letter) (progress g letter)
  | Ltl.Iff (f, g) -> Ltl.iff (progress f letter) (progress g letter)
  | Ltl.Next f -> f
  | Ltl.Eventually f -> Ltl.disj (progress f letter) (Ltl.eventually f)
  | Ltl.Always f -> Ltl.conj (progress f letter) (Ltl.always f)
  | Ltl.Until (f, g) ->
    Ltl.disj (progress g letter)
      (Ltl.conj (progress f letter) formula)
  | Ltl.Weak_until (f, g) ->
    Ltl.disj (progress g letter)
      (Ltl.conj (progress f letter) formula)
  | Ltl.Release (f, g) ->
    Ltl.conj (progress g letter)
      (Ltl.disj (progress f letter) formula)

let create formula =
  let simplified = Nnf.simplify formula in
  {
    original = formula;
    residual = simplified;
    position = 0;
    verdict =
      (match simplified with
       | Ltl.True -> Satisfied 0
       | Ltl.False -> Violated 0
       | other -> Running other);
  }

let status monitor = monitor.verdict

let step monitor letter =
  (match monitor.verdict with
   | Violated _ | Satisfied _ -> ()
   | Running _ ->
     let residual = Nnf.simplify (progress monitor.residual letter) in
     monitor.residual <- residual;
     monitor.verdict <-
       (match residual with
        | Ltl.True -> Satisfied monitor.position
        | Ltl.False -> Violated monitor.position
        | other -> Running other);
     monitor.position <- monitor.position + 1);
  monitor.verdict

let run monitor letters =
  List.iter (fun letter -> ignore (step monitor letter)) letters;
  monitor.verdict

let run_trace monitor ?(unroll = 2) trace =
  let positions =
    Trace.loop_start trace
    + (max 1 unroll * (Trace.length trace - Trace.loop_start trace))
  in
  let rec feed i =
    if i >= positions then monitor.verdict
    else
      match step monitor (Trace.letter_at trace i) with
      | Violated _ | Satisfied _ as final -> final
      | Running _ -> feed (i + 1)
  in
  feed 0

let reset monitor =
  let fresh = create monitor.original in
  monitor.residual <- fresh.residual;
  monitor.position <- 0;
  monitor.verdict <- fresh.verdict
