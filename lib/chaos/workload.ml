(* Chaos workloads: the three request streams the explorer traces and
   perturbs, each driven end-to-end through the real machinery — the
   batch harness with its journal and verdict store, an in-process
   serve pool with watchdog supervision, and a routed pool of real
   worker processes.  Every run gets a fresh scratch directory so the
   store/journal state of one schedule never leaks into the next, and
   runs are kept deterministic: one worker, closed-loop requests,
   fuel-governed verdicts, no wall-clock in any recorded field. *)

module Document = Speccc_core.Document
module Pipeline = Speccc_core.Pipeline
module Harness = Speccc_harness.Harness
module Server = Speccc_server.Server
module Jsonl = Speccc_server.Jsonl
module Lineio = Speccc_server.Lineio
module Shard = Speccc_shard.Shard
module Store = Speccc_store.Store

type kind = Batch | Serve | Route

type t = {
  kind : kind;
  docs : (string * string) list;   (* name -> text, '\n' between sentences *)
  requests : string list;          (* doc names in send order (serve/route) *)
  deadline : float;                (* serve: per-request watchdog deadline *)
  grace : float;
  shards : int;                    (* route: worker processes *)
  worker_delay : float;            (* route: wedge for the Kill victim *)
  fuel : int;
}

let kind_to_string = function
  | Batch -> "batch"
  | Serve -> "serve"
  | Route -> "route"

let kind_of_string = function
  | "batch" -> Some Batch
  | "serve" -> Some Serve
  | "route" -> Some Route
  | _ -> None

(* The seed documents: one consistent, one inconsistent, one mixed —
   small enough that a schedule replays in well under a second, rich
   enough to exercise translation, both verdict polarities, witness
   emission and the store/journal paths. *)
let seed_docs =
  [
    ("pump-ok", "If the start button is pressed, the pump is started.");
    ( "alarm-clash",
      "If the pump is lost, the alarm is triggered.\n\
       If the pump is lost, the alarm is not triggered." );
    ( "mixed",
      "If the start button is pressed, the pump is started.\n\
       If the pump is lost, the alarm is triggered." );
  ]

let seed ?(kind = Batch) () =
  {
    kind;
    docs = seed_docs;
    requests = [ "pump-ok"; "alarm-clash"; "mixed"; "pump-ok" ];
    deadline = 1.0;
    grace = 1.0;
    shards = 2;
    worker_delay = 8.0;
    fuel = 100_000;
  }

(* ---------- observations ---------- *)

type obs = {
  verdicts : (string * string) list;
      (* batch: doc name -> verdict class; serve/route: request id
         (as a string) -> verdict class or "error:<kind>" *)
  responses : int list;            (* serve/route: ids in arrival order,
                                      duplicates and all *)
  latencies : (int * float) list;  (* serve/route: id -> send-to-answer *)
  counters : (string * int) list;
  crashed : string option;         (* the run died with this exception *)
  journal : string option;         (* scratch journal path *)
  store_path : string option;      (* scratch store path *)
  acked : (string * string) list;
      (* store writes that were acked to the caller (put returned):
         key -> verdict class; these must survive recovery *)
}

let counter obs name =
  Option.value ~default:0 (List.assoc_opt name obs.counters)

let verdict_name = function
  | Harness.Consistent -> "consistent"
  | Harness.Inconsistent -> "inconsistent"
  | Harness.Unknown -> "unknown"
  | Harness.Failed _ -> "failed"

let definite = function "consistent" | "inconsistent" -> true | _ -> false

(* ---------- scratch directories ---------- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
      (Sys.readdir dir);
    (try Unix.rmdir dir with _ -> ())
  end

(* ---------- shared wiring ---------- *)

let options_of w =
  { (Pipeline.default_options ()) with
    Pipeline.fuel = Some w.fuel;
    certify = true }

let store_salt w = Store.salt_of_options (options_of w)

let store_counters prefix (s : Store.stats) =
  [
    (prefix ^ ".appends", s.Store.appends);
    (prefix ^ ".compactions", s.Store.compactions);
    (prefix ^ ".recovered_bytes", s.Store.recovered_bytes);
    (prefix ^ ".crc_failures", s.Store.crc_failures);
    (prefix ^ ".live", s.Store.live);
  ]

let harness_config ?journal ~resume w =
  { (Harness.default_config ()) with
    Harness.options = options_of w;
    retries = 2;
    backoff_base = 0.001;
    backoff_cap = 0.01;
    (* report the nominal backoff without sleeping: schedule replays
       must not pay wall-clock for retry pauses *)
    sleep = (fun s -> s);
    journal;
    resume }

(* ---------- batch ---------- *)

let run_batch ~dir ~resume w =
  let journal = Filename.concat dir "journal.jsonl" in
  let store_path = Filename.concat dir "store.log" in
  let store =
    Store.open_ ~compact_threshold:4 ~on_recover:(fun _ -> ()) store_path
  in
  let salt = store_salt w in
  let acked = ref [] in
  let config =
    let base = harness_config ~journal ~resume w in
    { base with
      Harness.store_find =
        Some (fun doc -> Store.find store (Store.key ~salt doc));
      store_put =
        Some
          (fun doc result ->
             let key = Store.key ~salt doc in
             Store.put store ~key result;
             (* only reached when put returned: the write was acked *)
             acked := (key, verdict_name result.Harness.verdict) :: !acked) }
  in
  let docs = List.map (fun (name, text) -> (name, Document.parse text)) w.docs in
  let crashed, results =
    match Harness.run config docs with
    | summary -> (None, summary.Harness.results)
    | exception e -> (Some (Printexc.to_string e), [])
  in
  let fresh, replayed =
    List.fold_left
      (fun (f, r) res -> if res.Harness.fresh then (f + 1, r) else (f, r + 1))
      (0, 0) results
  in
  let counters =
    store_counters "store" (Store.stats store)
    @ [ ("batch.fresh", fresh); ("batch.replayed", replayed) ]
  in
  Store.close store;
  {
    verdicts =
      List.map (fun r -> (r.Harness.doc, verdict_name r.Harness.verdict)) results;
    responses = [];
    latencies = [];
    counters;
    crashed;
    journal = Some journal;
    store_path = Some store_path;
    acked = List.rev !acked;
  }

(* ---------- closed-loop JSONL sessions (serve and route) ---------- *)

let check_request id text =
  Printf.sprintf "{\"id\":%d,\"doc\":\"%s\"}" id (Jsonl.escape text)

let send_fd fd line =
  let data = Bytes.of_string (line ^ "\n") in
  ignore (Speccc_runtime.Eintr.write fd data 0 (Bytes.length data))

let response_id json =
  Option.value ~default:(-1) (Jsonl.int_member "id" json)

let response_verdict json =
  match Jsonl.str_member "verdict" json with
  | Some v -> v
  | None -> (
      match Jsonl.str_member "error" json with
      | Some e -> "error:" ^ e
      | None -> "error:unparsable")

(* Drive a closed loop over a server/router speaking JSONL on [input_w]
   / [reader]: send each request, wait (bounded) for its answer, and
   after EOF-ing the input drain every remaining line — a duplicate
   response must show up in [responses], not desynchronize the loop.
   [on_sent i] runs right after request [i] (0-based) is written; the
   route driver uses it to SIGKILL a worker mid-request. *)
let closed_loop ~input_w ~reader ~read_timeout ~on_sent w =
  let never_stop () = false in
  let responses = ref [] in
  let latencies = ref [] in
  let verdicts = ref [] in
  let crashed = ref None in
  let texts = w.docs in
  (try
     List.iteri
       (fun i name ->
          if !crashed = None then begin
            let text =
              match List.assoc_opt name texts with
              | Some t -> t
              | None -> name
            in
            let id = i + 1 in
            let started = Unix.gettimeofday () in
            send_fd input_w (check_request id text);
            on_sent i;
            match
              Lineio.next_line
                ~deadline:(started +. read_timeout) reader ~stop:never_stop
            with
            | None ->
                crashed := Some "no response within the read timeout"
            | Some line -> (
                let elapsed = Unix.gettimeofday () -. started in
                match Jsonl.parse line with
                | Error e -> crashed := Some ("unparsable response: " ^ e)
                | Ok json ->
                    let rid = response_id json in
                    responses := rid :: !responses;
                    latencies := (rid, elapsed) :: !latencies;
                    verdicts :=
                      (string_of_int rid, response_verdict json) :: !verdicts)
          end)
       w.requests
   with e -> crashed := Some (Printexc.to_string e));
  (try Unix.close input_w with Unix.Unix_error _ -> ());
  (* drain: anything still in flight, and any duplicate answers *)
  let drain_deadline = Unix.gettimeofday () +. read_timeout in
  let rec drain () =
    match Lineio.next_line ~deadline:drain_deadline reader ~stop:never_stop with
    | None -> ()
    | Some line ->
        (match Jsonl.parse line with
         | Ok json ->
             let rid = response_id json in
             responses := rid :: !responses;
             verdicts := (string_of_int rid, response_verdict json) :: !verdicts
         | Error _ -> ());
        drain ()
  in
  drain ();
  (List.rev !verdicts, List.rev !responses, List.rev !latencies, !crashed)

(* ---------- serve ---------- *)

let run_serve ~dir w =
  let journal = Filename.concat dir "journal.jsonl" in
  let store_path = Filename.concat dir "store.log" in
  let store =
    Store.open_ ~compact_threshold:16 ~on_recover:(fun _ -> ()) store_path
  in
  let config =
    { (Server.default_config ()) with
      Server.harness = harness_config ~journal ~resume:false w;
      workers = 1;
      queue_capacity = 64;
      high_water = None;
      deadline = w.deadline;
      grace = w.grace;
      watchdog_poll = 0.005;
      drain_wait = 5.0;
      store = Some store }
  in
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  let output = Unix.out_channel_of_descr out_write in
  let stats = ref None in
  let server_error = ref None in
  let runner =
    Thread.create
      (fun () ->
         (try stats := Some (Server.run config ~input:in_read ~output)
          with e -> server_error := Some (Printexc.to_string e));
         try close_out output with Sys_error _ -> ())
      ()
  in
  let verdicts, responses, latencies, crashed =
    closed_loop ~input_w:in_write ~reader:(Lineio.create out_read)
      ~read_timeout:30.0 ~on_sent:(fun _ -> ()) w
  in
  Thread.join runner;
  (try Unix.close out_read with Unix.Unix_error _ -> ());
  (try Unix.close in_read with Unix.Unix_error _ -> ());
  let counters =
    (match !stats with
     | None -> []
     | Some s ->
         [
           ("serve.served", s.Server.served);
           ("serve.shed", s.Server.shed);
           ("serve.bad_requests", s.Server.bad_requests);
           ("serve.watchdog_trips", s.Server.watchdog_trips);
           ("serve.escalations", s.Server.escalations);
           ("serve.restarts", s.Server.restarts);
           ("serve.preempted", s.Server.preempted);
           ("serve.resumed", s.Server.resumed);
         ])
    @ store_counters "store" (Store.stats store)
  in
  Store.close store;
  let crashed =
    match (crashed, !server_error) with
    | Some c, _ -> Some c
    | None, Some e -> Some ("server raised: " ^ e)
    | None, None -> None
  in
  {
    verdicts;
    responses;
    latencies;
    counters;
    crashed;
    journal = Some journal;
    store_path = Some store_path;
    acked = [];
  }

(* ---------- route ---------- *)

(* The victim shard is wedged on EVERY request it receives (one delay
   trigger per occurrence), not just its first: the kill may target any
   request index, and earlier requests homed on the same shard must not
   consume the only stall before the one the driver kills mid-flight. *)
let worker_argv ~binary ~victim ~wedge ~delay ~shard ~socket =
  Array.of_list
    ([ binary; "serve"; "--socket"; socket; "--workers"; "1";
       "--request-deadline"; "5"; "--grace"; "1" ]
     @
     if shard = victim then
       List.concat_map
         (fun occ ->
            [ "--inject";
              Printf.sprintf "server.request@%d=delay:%g" occ delay ])
         (List.init (max 1 wedge) Fun.id)
     else [])

let shard_pids session_send reader =
  session_send "{\"id\":0,\"cmd\":\"health\"}";
  match
    Lineio.next_line
      ~deadline:(Unix.gettimeofday () +. 30.0) reader
      ~stop:(fun () -> false)
  with
  | None -> []
  | Some line -> (
      match Jsonl.parse line with
      | Error _ -> []
      | Ok json -> (
          match
            Option.bind (Jsonl.member "health" json) (Jsonl.member "shards")
          with
          | Some (Jsonl.Arr entries) ->
              List.filter_map
                (fun entry ->
                   match
                     (Jsonl.int_member "shard" entry, Jsonl.int_member "pid" entry)
                   with
                   | Some shard, Some pid -> Some (shard, pid)
                   | _ -> None)
                entries
          | _ -> []))

(* [kills] are 0-based request indices: right after that request is
   sent, the home-shard worker holding it is SIGKILLed.  The victim
   shard is spawned wedged ([w.worker_delay] on its first check) so
   the kill reliably lands mid-request; failover must still answer. *)
let run_route ~binary ~kills w =
  let socket_dir = temp_dir "speccc_chaos_sock" in
  let ring = Shard.Ring.create ~shards:w.shards ~replicas:32 in
  let victim =
    match kills with
    | [] -> -1
    | k :: _ -> (
        match List.nth_opt w.requests k with
        | None -> -1
        | Some name ->
            let text =
              Option.value ~default:name (List.assoc_opt name w.docs)
            in
            Shard.Ring.shard_of ring text)
  in
  let argv ~shard ~socket =
    worker_argv ~binary ~victim ~wedge:(List.length w.requests)
      ~delay:w.worker_delay ~shard ~socket
  in
  let config =
    { (Shard.default_config ~socket_dir ~worker_argv:argv) with
      Shard.shards = w.shards;
      request_retries = max 1 (w.shards - 1);
      request_timeout = 20.0;
      connect_timeout = 20.0;
      respawn_wait = 0.1;
      shutdown_wait = 5.0 }
  in
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  let output = Unix.out_channel_of_descr out_write in
  let stats = ref None in
  let router_error = ref None in
  let runner =
    Thread.create
      (fun () ->
         (try stats := Some (Shard.run config ~input:in_read ~output)
          with e -> router_error := Some (Printexc.to_string e));
         try close_out output with Sys_error _ -> ())
      ()
  in
  let reader = Lineio.create out_read in
  let pids =
    if kills = [] then []
    else shard_pids (fun line -> send_fd in_write line) reader
  in
  let on_sent i =
    if List.mem i kills then begin
      (* let the dispatch land on the wedged victim, then kill it *)
      Unix.sleepf 0.5;
      match List.assoc_opt victim pids with
      | Some pid -> (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ()
    end
  in
  (* the shared loop reads through the [reader] that already consumed
     the health response boundary *)
  let verdicts, responses, latencies, crashed =
    closed_loop ~input_w:in_write ~reader ~read_timeout:30.0 ~on_sent w
  in
  Thread.join runner;
  (try Unix.close out_read with Unix.Unix_error _ -> ());
  (try Unix.close in_read with Unix.Unix_error _ -> ());
  rm_rf socket_dir;
  let counters =
    match !stats with
    | None -> []
    | Some s ->
        [
          ("route.served", s.Shard.served);
          ("route.failovers", s.Shard.failovers);
          ("route.respawns", s.Shard.respawns);
          ("route.unavailable", s.Shard.unavailable);
          ("route.bad_requests", s.Shard.bad_requests);
        ]
  in
  let crashed =
    match (crashed, !router_error) with
    | Some c, _ -> Some c
    | None, Some e -> Some ("router raised: " ^ e)
    | None, None -> None
  in
  {
    verdicts;
    responses;
    latencies;
    counters;
    crashed;
    journal = None;
    store_path = None;
    acked = [];
  }
