(* Fault schedules: the unit the chaos explorer enumerates, minimizes
   and persists.  A schedule is a list of perturbations, each aimed at
   the n-th occurrence of a registered fault checkpoint; replaying one
   is just installing the equivalent [Fault] trigger plan.  [Kill] is
   the exception: it is performed by the route workload driver (a real
   SIGKILL of a worker process), not by the in-process fault plan, and
   its [site] is the pseudo-site {!kill_site} with the 0-based request
   index as the occurrence. *)

module Fault = Speccc_runtime.Fault

type action =
  | Crash            (* raise at the site: the process/attempt dies *)
  | Delay of float   (* stall the site this many seconds *)
  | Corrupt          (* mangle the artifact (corrupt-capable sites) *)
  | Kill             (* SIGKILL a route worker at this request index *)

type perturbation = { site : string; occurrence : int; action : action }
type t = perturbation list

let kill_site = "route.request"

let action_to_string = function
  | Crash -> "crash"
  | Delay s -> Printf.sprintf "delay:%g" s
  | Corrupt -> "corrupt"
  | Kill -> "kill"

let action_of_string s =
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "crash" -> Some Crash
      | "corrupt" -> Some Corrupt
      | "kill" -> Some Kill
      | _ -> None)
  | Some i -> (
      let head = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match (head, float_of_string_opt arg) with
      | "delay", Some f when f >= 0.0 -> Some (Delay f)
      | _ -> None)

let perturbation_to_string { site; occurrence; action } =
  Printf.sprintf "%s@%d=%s" site occurrence (action_to_string action)

let perturbation_of_string s =
  match String.index_opt s '=' with
  | None -> None
  | Some eq -> (
      let target = String.sub s 0 eq in
      let action = String.sub s (eq + 1) (String.length s - eq - 1) in
      match action_of_string action with
      | None -> None
      | Some action -> (
          match String.index_opt target '@' with
          | None -> None
          | Some at -> (
              let site = String.sub target 0 at in
              let occ = String.sub target (at + 1) (String.length target - at - 1) in
              match int_of_string_opt occ with
              | Some occurrence when occurrence >= 0 && site <> "" ->
                  Some { site; occurrence; action }
              | _ -> None)))

let to_string schedule =
  String.concat " " (List.map perturbation_to_string schedule)

(* The [Fault] trigger plan equivalent of a schedule ([Kill] entries
   are the route driver's job, not the plan's). *)
let triggers schedule =
  List.filter_map
    (fun { site; occurrence; action } ->
       let mk action =
         Some { Fault.checkpoint = site; after = occurrence; action }
       in
       match action with
       | Crash -> mk (Fault.Fail "chaos")
       | Delay s -> mk (Fault.Delay s)
       | Corrupt -> mk Fault.Corrupt
       | Kill -> None)
    schedule

let kills schedule =
  List.filter_map
    (fun p -> if p.action = Kill then Some p.occurrence else None)
    schedule
  |> List.sort_uniq compare

(* Total injected stall: the slack the latency invariant must grant a
   schedule before calling a late answer a violation. *)
let delay_budget schedule =
  List.fold_left
    (fun acc p -> match p.action with Delay s -> acc +. s | _ -> acc)
    0.0 schedule
