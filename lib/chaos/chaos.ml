(* Deterministic trace-and-perturb chaos exploration.

   Phase 1 runs a workload clean and records the ordered stream of
   announced fault checkpoints (via {!Fault.set_observer}); phase 2
   enumerates perturbations — Crash/Corrupt/Delay at each site
   occurrence seen in the trace, Kill at each route request, plus
   seeded pairs for cross-component interactions — replays each
   schedule through the existing seeded fault plans, and asserts the
   recovery invariant suite:

     I1 verdict-identity  every document/request that got a definite
                          answer agrees with the clean run
     I2 durability        no acked journal/store write is lost after
                          recovery, and nothing wrong was persisted
     I3 service           exactly-once responses, answered within the
                          watchdog bound (plus the injected stall)
     I4 accounting        recovery counters are booked consistently
                          with what was injected

   Failing schedules are delta-debug minimized with the diffcheck
   shrinker and persisted as replayable [.chaos] corpus entries. *)

module Fault = Speccc_runtime.Fault
module Harness = Speccc_harness.Harness
module Store = Speccc_store.Store
module Document = Speccc_core.Document
module Prng = Speccc_diffcheck.Prng
module Shrink = Speccc_diffcheck.Shrink

type violation = { invariant : string; detail : string }

type run = {
  obs : Workload.obs;
  recovered : Workload.obs option;   (* batch: the resumed clean rerun *)
  fired : (Schedule.perturbation * bool) list;
  journal_definite : int;
      (* definite verdicts in the journal as the perturbed run left it,
         sampled BEFORE the recovery run appends its own lines *)
}

(* ---------- tracing ---------- *)

let with_trace f =
  let trace = ref [] in
  let lock = Mutex.create () in
  Fault.set_observer
    (Some
       (fun name ->
          Mutex.lock lock;
          trace := name :: !trace;
          Mutex.unlock lock));
  let result =
    Fun.protect ~finally:(fun () -> Fault.set_observer None) f
  in
  (result, List.rev !trace)

let site_counts trace =
  let table = Hashtbl.create 16 in
  List.iter
    (fun site ->
       Hashtbl.replace table site
         (1 + Option.value ~default:0 (Hashtbl.find_opt table site)))
    trace;
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) table []
  |> List.sort compare

(* ---------- running one schedule ---------- *)

let run_perturbed ?binary ~schedule (w : Workload.t) =
  let dir = Workload.temp_dir "speccc_chaos" in
  Fault.install ~seed:0 (Schedule.triggers schedule);
  let obs =
    Fun.protect
      ~finally:(fun () -> ())
      (fun () ->
         match w.Workload.kind with
         | Workload.Batch -> Workload.run_batch ~dir ~resume:false w
         | Workload.Serve -> Workload.run_serve ~dir w
         | Workload.Route ->
             let binary =
               match binary with
               | Some b -> b
               | None -> invalid_arg "route workload needs the CLI binary"
             in
             Workload.run_route ~binary ~kills:(Schedule.kills schedule) w)
  in
  (* read the hit counters before disarming: a perturbation "fired"
     when its site was announced past its occurrence index *)
  let fired =
    List.map
      (fun (p : Schedule.perturbation) ->
         ( p,
           p.Schedule.action = Schedule.Kill
           || Fault.hits p.Schedule.site > p.Schedule.occurrence ))
      schedule
  in
  Fault.clear ();
  let journal_definite =
    match obs.Workload.journal with
    | Some journal when Sys.file_exists journal ->
        Harness.journal_read ~on_corrupt:(fun _ _ -> ()) journal
        |> List.filter (fun (_, r) ->
               Workload.definite (Workload.verdict_name r.Harness.verdict))
        |> List.length
    | _ -> 0
  in
  (* recovery phase: a batch that crashed (or tore its store) is
     restarted clean over the same journal and store, exactly what an
     operator's --resume rerun does *)
  let recovered =
    match w.Workload.kind with
    | Workload.Batch -> Some (Workload.run_batch ~dir ~resume:true w)
    | Workload.Serve | Workload.Route -> None
  in
  (dir, { obs; recovered; fired; journal_definite })

let run_clean ?binary (w : Workload.t) =
  let dir = Workload.temp_dir "speccc_chaos" in
  let obs, trace =
    with_trace (fun () ->
        match w.Workload.kind with
        | Workload.Batch -> Workload.run_batch ~dir ~resume:false w
        | Workload.Serve -> Workload.run_serve ~dir w
        | Workload.Route ->
            let binary =
              match binary with
              | Some b -> b
              | None -> invalid_arg "route workload needs the CLI binary"
            in
            Workload.run_route ~binary ~kills:[] w)
  in
  Workload.rm_rf dir;
  (obs, trace)

(* ---------- the invariant suite ---------- *)

let fired_sites run =
  List.filter_map
    (fun ((p : Schedule.perturbation), fired) ->
       if fired then Some (p.Schedule.site, p.Schedule.action) else None)
    run.fired

let fired_corrupt_store run =
  List.exists
    (fun (site, action) ->
       site = Fault.Checkpoint.store_append && action = Schedule.Corrupt)
    (fired_sites run)

let fired_kill run =
  List.exists (fun (_, action) -> action = Schedule.Kill) (fired_sites run)

(* Sites inside the serve worker's watchdog window: the request
   computation itself.  journal.append and server.write run after
   [Watchdog.complete] — a stall there is not preemptible by design,
   so no trip may be demanded of it. *)
let watchdogged site =
  site = "server.request" || site = "harness.document"
  || List.exists
       (fun prefix ->
          String.length site > String.length prefix
          && String.sub site 0 (String.length prefix) = prefix)
       [ "engine."; "bdd."; "sat."; "tableau."; "witness."; "pipeline." ]

let fired_escalating_delay (w : Workload.t) run =
  List.exists
    (fun (site, action) ->
       match action with
       | Schedule.Delay s ->
           watchdogged site && s > w.Workload.deadline +. w.Workload.grace
       | _ -> false)
    (fired_sites run)

(* I1: verdict identity.  [final] is the observation whose verdicts
   must agree with the clean run: the recovered rerun for batch, the
   perturbed responses for serve/route. *)
let check_identity ~clean ~(final : Workload.obs) =
  List.filter_map
    (fun (name, clean_verdict) ->
       if not (Workload.definite clean_verdict) then None
       else
         match List.assoc_opt name final.Workload.verdicts with
         | Some v when v = clean_verdict -> None
         | Some v when not (Workload.definite v) ->
             (* a perturbed request may legitimately degrade to
                unknown/failed; only a *flipped* definite verdict or a
                missing recovered document is a violation *)
             None
         | Some v ->
             Some
               {
                 invariant = "verdict-identity";
                 detail =
                   Printf.sprintf "%s: clean %s, after faults %s" name
                     clean_verdict v;
               }
         | None -> None)
    clean.Workload.verdicts

(* batch recovery must answer every document, definitely *)
let check_recovered_complete ~clean ~(recovered : Workload.obs) =
  (match recovered.Workload.crashed with
   | Some e ->
       [ { invariant = "verdict-identity";
           detail = "recovery run crashed: " ^ e } ]
   | None -> [])
  @ List.filter_map
      (fun (name, clean_verdict) ->
         if not (Workload.definite clean_verdict) then None
         else
           match List.assoc_opt name recovered.Workload.verdicts with
           | None ->
               Some
                 {
                   invariant = "verdict-identity";
                   detail = name ^ ": missing from the recovery run";
                 }
           | Some v when v = clean_verdict -> None
           | Some v ->
               Some
                 {
                   invariant = "verdict-identity";
                   detail =
                     Printf.sprintf "%s: clean %s, recovered %s" name
                       clean_verdict v;
                 })
      clean.Workload.verdicts

(* I2: durability.  Reopen the store the perturbed run wrote: every
   acked write must still be there with the same verdict, nothing may
   contradict the clean verdicts, and the journal must contain no
   unparsable interior lines (no injected fault tears mid-line). *)
let check_durability ~(w : Workload.t) ~clean ~run =
  match run.obs.Workload.store_path with
  | None -> ([], 0, 0)
  | Some path ->
      let store =
        Store.open_ ~compact_threshold:1_000_000 ~on_recover:(fun _ -> ()) path
      in
      let stats = Store.stats store in
      let salt = Workload.store_salt w in
      let acked_lost =
        List.filter_map
          (fun (key, verdict) ->
             match Store.find store key with
             | Some r when Workload.verdict_name r.Harness.verdict = verdict ->
                 None
             | Some r ->
                 Some
                   {
                     invariant = "durability";
                     detail =
                       Printf.sprintf
                         "acked store write changed verdict: %s -> %s" verdict
                         (Workload.verdict_name r.Harness.verdict);
                   }
             | None ->
                 Some
                   {
                     invariant = "durability";
                     detail = "acked store write lost after recovery (" ^ verdict ^ ")";
                   })
          run.obs.Workload.acked
      in
      let wrong_persist =
        List.filter_map
          (fun (name, text) ->
             match List.assoc_opt name clean.Workload.verdicts with
             | Some clean_verdict when Workload.definite clean_verdict -> (
                 let key = Store.key ~salt (Document.parse text) in
                 match Store.find store key with
                 | Some r
                   when Workload.verdict_name r.Harness.verdict <> clean_verdict
                   ->
                     Some
                       {
                         invariant = "durability";
                         detail =
                           Printf.sprintf "store holds %s for %s (clean: %s)"
                             (Workload.verdict_name r.Harness.verdict)
                             name clean_verdict;
                       }
                 | _ -> None)
             | _ -> None)
          w.Workload.docs
      in
      Store.close store;
      let torn_journal =
        match run.obs.Workload.journal with
        | None -> []
        | Some journal when Sys.file_exists journal ->
            let corrupt = ref 0 in
            let entries =
              Harness.journal_read
                ~on_corrupt:(fun _ _ -> incr corrupt)
                journal
            in
            ignore entries;
            if !corrupt > 0 then
              [ { invariant = "durability";
                  detail =
                    Printf.sprintf
                      "%d unparsable journal line(s): no injected fault \
                       writes partial lines"
                      !corrupt } ]
            else []
        | Some _ -> []
      in
      ( acked_lost @ wrong_persist @ torn_journal,
        stats.Store.recovered_bytes,
        stats.Store.crc_failures )

(* I3: exactly-once responses within the watchdog bound. *)
let check_service ~(w : Workload.t) ~schedule ~run =
  match w.Workload.kind with
  | Workload.Batch -> []
  | Workload.Serve | Workload.Route ->
      let n = List.length w.Workload.requests in
      let crashed =
        match run.obs.Workload.crashed with
        | Some e ->
            [ { invariant = "service"; detail = "run did not finish: " ^ e } ]
        | None -> []
      in
      let by_id id =
        List.length (List.filter (fun r -> r = id) run.obs.Workload.responses)
      in
      let exactly_once =
        List.concat_map
          (fun id ->
             match by_id id with
             | 1 -> []
             | 0 ->
                 [ { invariant = "service";
                     detail = Printf.sprintf "request %d never answered" id } ]
             | k ->
                 [ { invariant = "service";
                     detail = Printf.sprintf "request %d answered %d times" id k } ])
          (List.init n (fun i -> i + 1))
      in
      let bound =
        Schedule.delay_budget schedule
        +.
        match w.Workload.kind with
        | Workload.Serve -> (2.0 *. w.Workload.deadline) +. w.Workload.grace +. 1.0
        | _ -> 25.0
      in
      let late =
        List.filter_map
          (fun (id, latency) ->
             if latency > bound then
               Some
                 {
                   invariant = "service";
                   detail =
                     Printf.sprintf
                       "request %d answered after the %.1fs watchdog bound" id
                       bound;
                 }
             else None)
          run.obs.Workload.latencies
      in
      crashed @ exactly_once @ late

(* I4: recovery counters booked consistently with what was injected. *)
let check_accounting ~(w : Workload.t) ~run ~recovered_bytes ~crc_failures =
  let obs = run.obs in
  match w.Workload.kind with
  | Workload.Batch ->
      let corrupt = fired_corrupt_store run in
      (* the recovery run's own store open is what scans (and repairs)
         the log the perturbed run left behind — its counters are the
         ones that must reflect the injection *)
      let torn =
        match run.recovered with
        | None -> []
        | Some rec_obs ->
            let rb = Workload.counter rec_obs "store.recovered_bytes" in
            let cf = Workload.counter rec_obs "store.crc_failures" in
            if corrupt && rb = 0 then
              [ { invariant = "accounting";
                  detail =
                    "a torn store write was injected but recovery booked 0 \
                     recovered bytes" } ]
            else if (not corrupt) && (rb > 0 || cf > 0) then
              [ { invariant = "accounting";
                  detail =
                    Printf.sprintf
                      "no torn write was injected, yet recovery booked \
                       recovered_bytes=%d crc_failures=%d"
                      rb cf } ]
            else []
      in
      let replay =
        match run.recovered with
        | None -> []
        | Some rec_obs ->
            let expected =
              min run.journal_definite (List.length w.Workload.docs)
            in
            if Workload.counter rec_obs "batch.replayed" < expected then
              [ { invariant = "accounting";
                  detail =
                    Printf.sprintf
                      "recovery replayed %d results but the journal held %d \
                       definite verdicts"
                      (Workload.counter rec_obs "batch.replayed")
                      expected } ]
            else []
      in
      torn @ replay
  | Workload.Serve ->
      let c name = Workload.counter obs name in
      let escalate =
        if
          fired_escalating_delay w run
          && (c "serve.preempted" < 1 || c "serve.watchdog_trips" < 1)
        then
          [ { invariant = "accounting";
              detail =
                Printf.sprintf
                  "an over-deadline stall was injected but the watchdog \
                   booked preempted=%d trips=%d"
                  (c "serve.preempted") (c "serve.watchdog_trips") } ]
        else []
      in
      let restarts =
        if c "serve.restarts" < c "serve.escalations" then
          [ { invariant = "accounting";
              detail =
                Printf.sprintf "escalations=%d outnumber worker restarts=%d"
                  (c "serve.escalations") (c "serve.restarts") } ]
        else []
      in
      let shed =
        if c "serve.shed" > 0 || c "serve.bad_requests" > 0 then
          [ { invariant = "accounting";
              detail =
                Printf.sprintf
                  "closed-loop soak shed %d / rejected %d requests"
                  (c "serve.shed") (c "serve.bad_requests") } ]
        else []
      in
      (* serve never reopens its store during the run, so the post-run
         reopen performed by the durability check is where a torn tail
         must surface *)
      let torn =
        let corrupt = fired_corrupt_store run in
        if corrupt && recovered_bytes = 0 then
          [ { invariant = "accounting";
              detail =
                "a torn store write was injected but the reopen booked 0 \
                 recovered bytes" } ]
        else if (not corrupt) && (recovered_bytes > 0 || crc_failures > 0)
        then
          [ { invariant = "accounting";
              detail =
                Printf.sprintf
                  "no torn write was injected, yet the reopen booked \
                   recovered_bytes=%d crc_failures=%d"
                  recovered_bytes crc_failures } ]
        else []
      in
      escalate @ restarts @ shed @ torn
  | Workload.Route ->
      let c name = Workload.counter obs name in
      let killed = fired_kill run in
      let respawn =
        if killed && (c "route.respawns" < 1 || c "route.failovers" < 1) then
          [ { invariant = "accounting";
              detail =
                Printf.sprintf
                  "a worker was SIGKILLed but the router booked respawns=%d \
                   failovers=%d"
                  (c "route.respawns") (c "route.failovers") } ]
        else []
      in
      let unavailable =
        if c "route.unavailable" > 0 then
          [ { invariant = "accounting";
              detail =
                Printf.sprintf "%d request(s) exhausted every shard"
                  (c "route.unavailable") } ]
        else []
      in
      respawn @ unavailable

let check_invariants ~(w : Workload.t) ~schedule ~clean ~run =
  let identity =
    match (w.Workload.kind, run.recovered) with
    | Workload.Batch, Some recovered ->
        check_recovered_complete ~clean ~recovered
    | Workload.Batch, None -> []
    | (Workload.Serve | Workload.Route), _ ->
        check_identity ~clean ~final:run.obs
  in
  let durability, recovered_bytes, crc_failures =
    check_durability ~w ~clean ~run
  in
  let service = check_service ~w ~schedule ~run in
  let accounting = check_accounting ~w ~run ~recovered_bytes ~crc_failures in
  identity @ durability @ service @ accounting

(* one schedule end to end: run, check, clean up the scratch dir *)
let try_schedule ?binary ~clean (w : Workload.t) schedule =
  let dir, run = run_perturbed ?binary ~schedule w in
  let violations = check_invariants ~w ~schedule ~clean ~run in
  Workload.rm_rf dir;
  (run, violations)

(* ---------- delta-debug minimization ---------- *)

let invariants_of violations =
  List.sort_uniq compare (List.map (fun v -> v.invariant) violations)

(* Shrink the schedule while the *same invariant* keeps failing: the
   ddmin list ladder (halves + single deletions) plus occurrence
   lowering.  Each probe is a full replay, so the depth is bounded. *)
let minimize ?binary ~clean ~w ~schedule violations =
  let target = invariants_of violations in
  let still_fails candidate =
    if candidate = [] then None
    else
      let _, vs = try_schedule ?binary ~clean w candidate in
      if List.exists (fun v -> List.mem v.invariant target) vs then Some vs
      else None
  in
  let occurrence_shrinks schedule =
    List.concat_map
      (fun (i, (p : Schedule.perturbation)) ->
         if p.Schedule.occurrence > 0 then
           [ List.mapi
               (fun j q ->
                  if j = i then { p with Schedule.occurrence = 0 } else q)
               schedule ]
         else [])
      (List.mapi (fun i p -> (i, p)) schedule)
  in
  let rec go schedule violations budget =
    if budget <= 0 then (schedule, violations)
    else
      let candidates =
        Shrink.list_shrinks schedule @ occurrence_shrinks schedule
      in
      let rec first = function
        | [] -> None
        | c :: rest -> (
            match still_fails c with
            | Some vs -> Some (c, vs)
            | None -> first rest)
      in
      match first candidates with
      | Some (smaller, vs) -> go smaller vs (budget - 1)
      | None -> (schedule, violations)
  in
  go schedule violations 12

(* ---------- corpus entries (.chaos) ---------- *)

type expect = Pass | Expect_violation of string

type entry = {
  workload : Workload.t;
  schedule : Schedule.t;
  seed : int;
  expect : expect;
  requires : (string * int) list;
      (* counter >= n over the perturbed run (batch recovery counters
         are exposed with a "recovered." prefix) *)
}

let entry_to_string e =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "workload: %s" (Workload.kind_to_string e.workload.Workload.kind);
  List.iter
    (fun (name, text) ->
       line "doc: %s" name;
       List.iter (fun s -> line "text: %s" s) (String.split_on_char '\n' text))
    e.workload.Workload.docs;
  line "requests: %s" (String.concat " " e.workload.Workload.requests);
  line "deadline: %g" e.workload.Workload.deadline;
  line "grace: %g" e.workload.Workload.grace;
  line "shards: %d" e.workload.Workload.shards;
  line "worker-delay: %g" e.workload.Workload.worker_delay;
  line "fuel: %d" e.workload.Workload.fuel;
  line "seed: %d" e.seed;
  List.iter
    (fun p -> line "perturb: %s" (Schedule.perturbation_to_string p))
    e.schedule;
  List.iter (fun (name, n) -> line "require: %s>=%d" name n) e.requires;
  (match e.expect with
   | Pass -> line "expect: pass"
   | Expect_violation inv -> line "expect: violation %s" inv);
  Buffer.contents b

let entry_of_string text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines = String.split_on_char '\n' text in
  let base = Workload.seed () in
  let workload = ref { base with Workload.docs = []; requests = [] } in
  let docs = ref [] in
  let schedule = ref [] in
  let requires = ref [] in
  let expect = ref Pass in
  let seed = ref 0 in
  let result =
    List.fold_left
      (fun acc raw ->
         match acc with
         | Error _ -> acc
         | Ok () -> (
             let line = String.trim raw in
             if line = "" || line.[0] = '#' then Ok ()
             else
               match String.index_opt line ':' with
               | None -> err "unparsable line %S" line
               | Some i -> (
                   let key = String.sub line 0 i in
                   let value =
                     String.trim
                       (String.sub line (i + 1) (String.length line - i - 1))
                   in
                   match key with
                   | "workload" -> (
                       match Workload.kind_of_string value with
                       | Some kind ->
                           workload := { !workload with Workload.kind };
                           Ok ()
                       | None -> err "unknown workload %S" value)
                   | "doc" ->
                       docs := (value, []) :: !docs;
                       Ok ()
                   | "text" -> (
                       match !docs with
                       | [] -> err "text: before any doc:"
                       | (name, texts) :: rest ->
                           docs := (name, value :: texts) :: rest;
                           Ok ())
                   | "requests" ->
                       workload :=
                         { !workload with
                           Workload.requests =
                             List.filter
                               (fun s -> s <> "")
                               (String.split_on_char ' ' value) };
                       Ok ()
                   | "deadline" | "grace" | "worker-delay" -> (
                       match float_of_string_opt value with
                       | None -> err "bad float for %s: %S" key value
                       | Some f ->
                           (workload :=
                              match key with
                              | "deadline" -> { !workload with Workload.deadline = f }
                              | "grace" -> { !workload with Workload.grace = f }
                              | _ -> { !workload with Workload.worker_delay = f });
                           Ok ())
                   | "shards" | "fuel" | "seed" -> (
                       match int_of_string_opt value with
                       | None -> err "bad int for %s: %S" key value
                       | Some n ->
                           (match key with
                            | "shards" ->
                                workload := { !workload with Workload.shards = n }
                            | "fuel" ->
                                workload := { !workload with Workload.fuel = n }
                            | _ -> seed := n);
                           Ok ())
                   | "perturb" -> (
                       match Schedule.perturbation_of_string value with
                       | Some p ->
                           schedule := p :: !schedule;
                           Ok ()
                       | None -> err "unparsable perturbation %S" value)
                   | "require" -> (
                       match String.index_opt value '>' with
                       | Some j
                         when j + 1 < String.length value && value.[j + 1] = '=' -> (
                           let name = String.trim (String.sub value 0 j) in
                           let n =
                             String.sub value (j + 2) (String.length value - j - 2)
                           in
                           match int_of_string_opt (String.trim n) with
                           | Some n ->
                               requires := (name, n) :: !requires;
                               Ok ()
                           | None -> err "bad require %S" value)
                       | _ -> err "bad require %S (want counter>=n)" value)
                   | "expect" -> (
                       match String.split_on_char ' ' value with
                       | [ "pass" ] ->
                           expect := Pass;
                           Ok ()
                       | [ "violation"; inv ] ->
                           expect := Expect_violation inv;
                           Ok ()
                       | _ -> err "bad expect %S" value)
                   | _ -> err "unknown key %S" key)))
      (Ok ()) lines
  in
  match result with
  | Error _ as e -> e
  | Ok () ->
      let docs =
        List.rev_map
          (fun (name, texts) -> (name, String.concat "\n" (List.rev texts)))
          !docs
      in
      let requests =
        if !workload.Workload.requests = [] then List.map fst docs
        else !workload.Workload.requests
      in
      Ok
        {
          workload = { !workload with Workload.docs = docs; requests };
          schedule = List.rev !schedule;
          seed = !seed;
          expect = !expect;
          requires = List.rev !requires;
        }

let write_entry ~dir ~name entry =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  let path = Filename.concat dir (name ^ ".chaos") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (entry_to_string entry));
  path

let load_entry path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  entry_of_string text

(* ---------- replay ---------- *)

(* Replay one corpus entry: clean run, perturbed run (plus recovery
   for batch), invariant suite, counter requirements.  [Ok] when the
   entry's expectation holds. *)
let replay ?binary entry =
  let w = entry.workload in
  let clean, _trace = run_clean ?binary w in
  match clean.Workload.crashed with
  | Some e -> Error [ "clean run crashed: " ^ e ]
  | None -> (
      let dir, run = run_perturbed ?binary ~schedule:entry.schedule w in
      let violations =
        check_invariants ~w ~schedule:entry.schedule ~clean ~run
      in
      Workload.rm_rf dir;
      let counters =
        run.obs.Workload.counters
        @ (match run.recovered with
           | None -> []
           | Some rec_obs ->
               List.map
                 (fun (k, v) -> ("recovered." ^ k, v))
                 rec_obs.Workload.counters)
      in
      let missing_requires =
        List.filter_map
          (fun (name, n) ->
             let have =
               Option.value ~default:0 (List.assoc_opt name counters)
             in
             if have >= n then None
             else Some (Printf.sprintf "require %s>=%d, got %d" name n have))
          entry.requires
      in
      let describe vs =
        List.map (fun v -> v.invariant ^ ": " ^ v.detail) vs
      in
      match entry.expect with
      | Pass ->
          if violations = [] && missing_requires = [] then Ok []
          else Error (describe violations @ missing_requires)
      | Expect_violation inv ->
          if List.exists (fun v -> v.invariant = inv) violations then
            Ok (describe violations)
          else
            Error
              (Printf.sprintf "expected a %s violation, got none" inv
               :: describe violations
               @ missing_requires))

(* ---------- enumeration and exploration ---------- *)

type report = {
  workload : string;
  sites : (string * int) list;        (* clean-trace occurrence counts *)
  schedules_run : int;
  capped : (string * int) list;       (* site -> occurrences not explored *)
  skipped : string list;              (* excluded combos, with reasons *)
  violations : (Schedule.t * violation) list;   (* minimized *)
  corpus_files : string list;
}

(* Crash at a response-write site drops the answer by design — the
   model for a vanished client, indistinguishable from a violated
   exactly-once invariant from outside.  Excluded, and logged. *)
let crash_excluded site = site = "server.write" || site = "route.write"

let delay_for (w : Workload.t) =
  match w.Workload.kind with
  | Workload.Batch -> 0.05
  | Workload.Serve -> w.Workload.deadline +. w.Workload.grace +. 0.5
  | Workload.Route -> 0.5

let single_site_schedules ~sites ~occ_cap (w : Workload.t) counts =
  let capped = ref [] in
  let skipped = ref [] in
  let schedules =
    List.concat_map
      (fun (site, count) ->
         if sites <> [] && not (List.mem site sites) then []
         else begin
           let explored = min count occ_cap in
           if count > explored then
             capped := (site, count - explored) :: !capped;
           List.concat_map
             (fun occurrence ->
                let actions =
                  (if crash_excluded site then begin
                     skipped :=
                       (site ^ ": crash (response-write site, dropped \
                                 answers are by design)")
                       :: !skipped;
                     []
                   end
                   else [ Schedule.Crash ])
                  @ [ Schedule.Delay (delay_for w) ]
                  @ (if Fault.Checkpoint.corruptible site then
                       [ Schedule.Corrupt ]
                     else [])
                in
                List.map
                  (fun action -> [ { Schedule.site; occurrence; action } ])
                  actions)
             (List.init explored Fun.id)
         end)
      counts
  in
  let kill_schedules =
    match w.Workload.kind with
    | Workload.Route ->
        List.mapi
          (fun i _ ->
             [ { Schedule.site = Schedule.kill_site;
                 occurrence = i;
                 action = Schedule.Kill } ])
          w.Workload.requests
    | _ -> []
  in
  ( schedules @ kill_schedules,
    List.sort_uniq compare !capped,
    List.sort_uniq compare !skipped )

let pair_schedules ~seed ~pairs singles =
  if pairs <= 0 || List.length singles < 2 then []
  else begin
    let rng = Prng.make seed in
    List.init pairs (fun _ ->
        let a = Prng.pick rng singles in
        let b = Prng.pick rng singles in
        a @ b)
    |> List.filter (fun s ->
           match s with
           | [ a; b ] ->
               not
                 (a.Schedule.site = b.Schedule.site
                  && a.Schedule.occurrence = b.Schedule.occurrence)
           | _ -> true)
    |> List.sort_uniq compare
  end

let explore ?binary ?(sites = []) ?(occ_cap = 3) ?(pairs = 5)
    ?(max_schedules = 0) ?corpus_dir ~seed ~log (w : Workload.t) =
  log (Printf.sprintf "chaos: tracing a clean %s run"
         (Workload.kind_to_string w.Workload.kind));
  let clean, trace = run_clean ?binary w in
  (match clean.Workload.crashed with
   | Some e -> failwith ("chaos: clean run crashed: " ^ e)
   | None -> ());
  let counts = site_counts trace in
  let singles, capped, skipped = single_site_schedules ~sites ~occ_cap w counts in
  let paired = pair_schedules ~seed ~pairs singles in
  let all = singles @ paired in
  let all, truncated =
    if max_schedules > 0 && List.length all > max_schedules then
      (List.filteri (fun i _ -> i < max_schedules) all,
       List.length all - max_schedules)
    else (all, 0)
  in
  let skipped =
    skipped
    @ (if truncated > 0 then
         [ Printf.sprintf "%d schedule(s) beyond --max-schedules" truncated ]
       else [])
  in
  log (Printf.sprintf "chaos: %d sites in trace, %d schedules to replay"
         (List.length counts) (List.length all));
  let violations = ref [] in
  let corpus_files = ref [] in
  List.iteri
    (fun i schedule ->
       if i mod 10 = 0 && i > 0 then
         log (Printf.sprintf "chaos: %d/%d schedules replayed" i
                (List.length all));
       let _, vs = try_schedule ?binary ~clean w schedule in
       match vs with
       | [] -> ()
       | vs ->
           log (Printf.sprintf "chaos: violation at [%s], minimizing"
                  (Schedule.to_string schedule));
           let minimized, vs = minimize ?binary ~clean ~w ~schedule vs in
           List.iter
             (fun v ->
                violations := (minimized, v) :: !violations;
                match corpus_dir with
                | None -> ()
                | Some dir ->
                    let name =
                      Printf.sprintf "chaos-%s-%03d"
                        (Workload.kind_to_string w.Workload.kind)
                        (List.length !corpus_files)
                    in
                    let entry =
                      {
                        workload = w;
                        schedule = minimized;
                        seed;
                        expect = Expect_violation v.invariant;
                        requires = [];
                      }
                    in
                    corpus_files := write_entry ~dir ~name entry :: !corpus_files)
             (List.sort_uniq compare vs))
       all;
  {
    workload = Workload.kind_to_string w.Workload.kind;
    sites = counts;
    schedules_run = List.length all;
    capped;
    skipped;
    violations = List.rev !violations;
    corpus_files = List.rev !corpus_files;
  }

let pp_report fmt r =
  Format.fprintf fmt "chaos exploration over the %s workload@." r.workload;
  Format.fprintf fmt "  sites traced:@.";
  List.iter
    (fun (site, n) -> Format.fprintf fmt "    %-24s x%d@." site n)
    r.sites;
  List.iter
    (fun (site, dropped) ->
       Format.fprintf fmt "  capped: %s (%d occurrence(s) not explored)@."
         site dropped)
    r.capped;
  List.iter (fun s -> Format.fprintf fmt "  skipped: %s@." s) r.skipped;
  Format.fprintf fmt "  schedules replayed: %d@." r.schedules_run;
  if r.violations = [] then
    Format.fprintf fmt "  invariants: all held (0 violations)@."
  else
    List.iter
      (fun (schedule, v) ->
         Format.fprintf fmt "  VIOLATION %s: %s@.    schedule: %s@."
           v.invariant v.detail (Schedule.to_string schedule))
      r.violations;
  List.iter
    (fun path -> Format.fprintf fmt "  corpus entry written: %s@." path)
    r.corpus_files
