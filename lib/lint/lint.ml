open Speccc_logic
open Speccc_automata

type finding =
  | Unsatisfiable of int
  | Valid of int
  | Pair_conflict of int * int * Trace.t
  | Vacuous_guard of int

let satisfiable ?budget formula = Nbw.find_word (Nbw.of_ltl ?budget formula)
let valid ?budget formula = satisfiable ?budget (Ltl.neg formula) = None
let equivalent f g = valid (Ltl.iff f g)

(* The guard of a translated requirement: □(guard → _). *)
let guard_of = function
  | Ltl.Always (Ltl.Implies (guard, _)) -> Some guard
  | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not _ | Ltl.And _ | Ltl.Or _
  | Ltl.Implies _ | Ltl.Iff _ | Ltl.Next _ | Ltl.Eventually _ | Ltl.Always _
  | Ltl.Until _ | Ltl.Weak_until _ | Ltl.Release _ ->
    None

let check ?budget formulas =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.pipeline_lint;
  let satisfiable f = satisfiable ?budget f in
  let valid f = valid ?budget f in
  let formulas = Array.of_list formulas in
  let n = Array.length formulas in
  let findings = ref [] in
  let unsat = Array.make n false in
  (* per-requirement checks *)
  for i = 0 to n - 1 do
    if satisfiable formulas.(i) = None then begin
      unsat.(i) <- true;
      findings := Unsatisfiable i :: !findings
    end
    else if valid formulas.(i) then findings := Valid i :: !findings
  done;
  (* pairwise conflicts — only meaningful when both sides are
     individually satisfiable, and bounded to keep the pass cheap *)
  if n <= 60 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if (not unsat.(i)) && not unsat.(j) then
          if satisfiable (Ltl.conj formulas.(i) formulas.(j)) = None then begin
            let witness =
              match satisfiable formulas.(i) with
              | Some word -> word
              | None -> assert false
            in
            findings := Pair_conflict (i, j, witness) :: !findings
          end
      done
    done;
  (* Vacuous guards.  The tableau is exponential in the number of
     conjuncts, so the precise spec-relative check (can the guard ever
     fire while the whole specification holds?) is reserved for small
     specifications; beyond that the guard is only checked on its own
     (a contradictory guard is vacuous under any context). *)
  let context =
    if n <= 10 then
      let whole = Ltl.conj_list (Array.to_list formulas) in
      if satisfiable whole <> None then Some whole else None
    else Some Ltl.tt
  in
  (match context with
   | None -> ()  (* the whole spec is unsatisfiable; pairs already blame *)
   | Some context ->
     for i = 0 to n - 1 do
       match guard_of formulas.(i) with
       | Some guard ->
         if satisfiable (Ltl.conj context (Ltl.eventually guard)) = None then
           findings := Vacuous_guard i :: !findings
       | None -> ()
     done);
  List.rev !findings

let pp_finding ~requirement_text ppf finding =
  let describe i =
    match requirement_text i with
    | Some text -> Printf.sprintf "requirement %d (%s)" i text
    | None -> Printf.sprintf "requirement %d" i
  in
  match finding with
  | Unsatisfiable i ->
    Format.fprintf ppf "%s is self-contradictory (unsatisfiable)"
      (describe i)
  | Valid i ->
    Format.fprintf ppf "%s is a tautology — it constrains nothing"
      (describe i)
  | Pair_conflict (i, j, _) ->
    Format.fprintf ppf "%s and %s cannot hold together" (describe i)
      (describe j)
  | Vacuous_guard i ->
    Format.fprintf ppf
      "%s never fires: its guard is unreachable under the specification"
      (describe i)
