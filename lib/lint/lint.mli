(** Early sanity checks on a translated specification, before the
    synthesis-based consistency check — the automated-consistency
    tradition of Heitmeyer et al.'s SCR checker (the paper's related
    work [8]), recast for LTL requirements.

    All checks are decided exactly by Büchi-automaton emptiness over
    {!Speccc_automata.Nbw}; findings carry witness words where
    meaningful.  These checks are cheaper than realizability and catch
    the blunt errors (a self-contradictory requirement, two
    requirements with directly conflicting responses, a guard that can
    never fire) with pinpoint blame, complementing the game-based check
    that judges the specification as a whole. *)

type finding =
  | Unsatisfiable of int
      (** requirement [i] admits no behaviour at all *)
  | Valid of int
      (** requirement [i] is a tautology — it constrains nothing,
          usually a translation accident *)
  | Pair_conflict of int * int * Speccc_logic.Trace.t
      (** requirements [i] and [j] are jointly unsatisfiable; the
          witness satisfies [i] but violates [j] *)
  | Vacuous_guard of int
      (** requirement [i] has the shape [□(guard → _)] and [guard] can
          never hold under the whole specification — the requirement
          never fires *)

val satisfiable :
  ?budget:Speccc_runtime.Budget.t ->
  Speccc_logic.Ltl.t ->
  Speccc_logic.Trace.t option
(** A model of the formula, or [None] if unsatisfiable.  [budget]
    governs the underlying tableau (exhaustion raises
    [Speccc_runtime.Runtime.Interrupt]). *)

val valid : ?budget:Speccc_runtime.Budget.t -> Speccc_logic.Ltl.t -> bool
(** Is the formula true on every word? *)

val equivalent : Speccc_logic.Ltl.t -> Speccc_logic.Ltl.t -> bool
(** Language equality (via validity of the biconditional). *)

val check :
  ?budget:Speccc_runtime.Budget.t -> Speccc_logic.Ltl.t list -> finding list
(** All findings over a specification, cheapest checks first.
    [Pair_conflict] is only reported for pairs where neither member is
    already [Unsatisfiable], and the quadratic pass is skipped for
    specifications beyond 60 requirements. *)

val pp_finding :
  requirement_text:(int -> string option) ->
  Format.formatter ->
  finding ->
  unit
