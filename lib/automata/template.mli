(** Template abstraction for the automaton construction.

    Translated requirements overwhelmingly instantiate a handful of
    Dwyer-catalogue template shapes — hundreds of [□(g → ♦r)] response
    instances that differ only in which atoms they mention.  The GPVW
    tableau treats atoms opaquely, so the automaton of such a formula
    is the automaton of its {e shape} with the atoms renamed.
    {!abstract} computes that shape: it recognizes the formula against
    the pattern catalogue ({!Speccc_patterns.Patterns.recognize}) and,
    on a hit, replaces each distinct atom — in first-occurrence
    order — with a canonical slot name.  The consumer
    ({!Speccc_automata.Nbw.of_ltl}) builds one automaton per canonical
    shape and serves later instances by substituting the concrete
    atoms back into the guards, bypassing the tableau entirely.

    Soundness rests on the substitution being a bijection between slot
    names and the formula's atoms: for a bijective atom renaming σ,
    L(σφ) = σ(L(φ)), and renaming an automaton's guard atoms by σ
    realizes exactly that. *)

type abstraction = {
  template : string;  (** pattern-catalogue name, e.g. ["response"] *)
  arity : int;        (** number of distinct atoms = template slots *)
  canonical : Speccc_logic.Ltl.t;
      (** the formula with atom [k] (first-occurrence order) replaced
          by {!slot_name}[ k]; interned, so its id keys the compiled
          shape *)
  mapping : (string * string) list;
      (** slot name → concrete atom, a bijection *)
}

val slot_name : int -> string
(** Canonical atom for slot [k]. *)

val abstract : Speccc_logic.Ltl.t -> abstraction option
(** The formula's template shape, or [None] when the formula matches
    no catalogue pattern (such formulas take the generic tableau
    path).  [abstract] never fails on a recognized instance: any
    parameter formula abstracts, because the renaming works on atoms,
    not on the pattern's parameter slots. *)
