open Speccc_logic

type guard = (string * bool) list

type t = {
  num_states : int;
  initial : int list;
  accepting : bool array;
  transitions : (int * guard * int) list;
  atoms : string list;
}

(* --- normalization to the tableau core: literals, ∧, ∨, X, U, R --- *)

let rec to_core f =
  match Nnf.of_formula f with
  | Ltl.True -> Ltl.True
  | Ltl.False -> Ltl.False
  | (Ltl.Prop _ | Ltl.Not (Ltl.Prop _)) as literal -> literal
  | Ltl.And (g, h) -> Ltl.And (to_core g, to_core h)
  | Ltl.Or (g, h) -> Ltl.Or (to_core g, to_core h)
  | Ltl.Next g -> Ltl.Next (to_core g)
  | Ltl.Eventually g -> Ltl.Until (Ltl.True, to_core g)
  | Ltl.Always g -> Ltl.Release (Ltl.False, to_core g)
  | Ltl.Until (g, h) -> Ltl.Until (to_core g, to_core h)
  | Ltl.Release (g, h) -> Ltl.Release (to_core g, to_core h)
  | Ltl.Weak_until (g, h) ->
    let g = to_core g and h = to_core h in
    Ltl.Release (h, Ltl.Or (g, h))
  | Ltl.Not _ | Ltl.Implies _ | Ltl.Iff _ ->
    (* NNF leaves none of these except Not on props, handled above. *)
    assert false

(* --- GPVW tableau --- *)

type node = {
  id : int;
  mutable incoming : int list;  (* -1 stands for the init pseudo-state *)
  mutable to_process : Ltl.Set.t;
  mutable old : Ltl.Set.t;
  mutable next : Ltl.Set.t;
}

let init_id = -1

let build_tableau ?budget formula =
  let counter = ref 0 in
  let fresh_id () =
    (* One fuel unit per tableau node: the expansion is exponential in
       the formula, and node creation dominates its cost. *)
    (match budget with
     | Some budget ->
       Speccc_runtime.Budget.checkpoint budget ~stage:"tableau"
     | None -> ());
    Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.tableau_expand;
    incr counter; !counter
  in
  let completed : node list ref = ref [] in
  let rec expand node =
    match Ltl.Set.choose_opt node.to_process with
    | None ->
      (* Node fully processed: merge with an equivalent completed node
         or record it and start its successor. *)
      (match
         List.find_opt
           (fun other ->
              Ltl.Set.equal other.old node.old
              && Ltl.Set.equal other.next node.next)
           !completed
       with
       | Some other -> other.incoming <- node.incoming @ other.incoming
       | None ->
         completed := node :: !completed;
         let successor = {
           id = fresh_id ();
           incoming = [ node.id ];
           to_process = node.next;
           old = Ltl.Set.empty;
           next = Ltl.Set.empty;
         }
         in
         expand successor)
    | Some f ->
      node.to_process <- Ltl.Set.remove f node.to_process;
      let contradicts literal = Ltl.Set.mem (Nnf.of_formula (Ltl.Not literal)) node.old in
      (match f with
       | Ltl.False -> ()  (* inconsistent: drop this node *)
       | Ltl.True -> expand node
       | Ltl.Prop _ | Ltl.Not (Ltl.Prop _) ->
         if contradicts f then ()
         else begin
           node.old <- Ltl.Set.add f node.old;
           expand node
         end
       | Ltl.And (g, h) ->
         let missing =
           Ltl.Set.diff (Ltl.Set.of_list [ g; h ]) node.old
         in
         node.to_process <- Ltl.Set.union missing node.to_process;
         node.old <- Ltl.Set.add f node.old;
         expand node
       | Ltl.Or (g, h) ->
         let clone extra = {
           id = fresh_id ();
           incoming = node.incoming;
           to_process =
             (if Ltl.Set.mem extra node.old then node.to_process
              else Ltl.Set.add extra node.to_process);
           old = Ltl.Set.add f node.old;
           next = node.next;
         }
         in
         expand (clone g);
         expand (clone h)
       | Ltl.Next g ->
         node.old <- Ltl.Set.add f node.old;
         node.next <- Ltl.Set.add g node.next;
         expand node
       | Ltl.Until (g, h) ->
         (* child 1: g now and the until carried over; child 2: h now *)
         let child1 = {
           id = fresh_id ();
           incoming = node.incoming;
           to_process =
             (if Ltl.Set.mem g node.old then node.to_process
              else Ltl.Set.add g node.to_process);
           old = Ltl.Set.add f node.old;
           next = Ltl.Set.add f node.next;
         }
         in
         let child2 = {
           id = fresh_id ();
           incoming = node.incoming;
           to_process =
             (if Ltl.Set.mem h node.old then node.to_process
              else Ltl.Set.add h node.to_process);
           old = Ltl.Set.add f node.old;
           next = node.next;
         }
         in
         expand child1;
         expand child2
       | Ltl.Release (g, h) ->
         (* child 1: h now and the release carried over; child 2: g∧h *)
         let child1 = {
           id = fresh_id ();
           incoming = node.incoming;
           to_process =
             (if Ltl.Set.mem h node.old then node.to_process
              else Ltl.Set.add h node.to_process);
           old = Ltl.Set.add f node.old;
           next = Ltl.Set.add f node.next;
         }
         in
         let child2 = {
           id = fresh_id ();
           incoming = node.incoming;
           to_process =
             Ltl.Set.union
               (Ltl.Set.diff (Ltl.Set.of_list [ g; h ]) node.old)
               node.to_process;
           old = Ltl.Set.add f node.old;
           next = node.next;
         }
         in
         expand child1;
         expand child2
       | Ltl.Implies _ | Ltl.Iff _ | Ltl.Eventually _ | Ltl.Always _
       | Ltl.Weak_until _ | Ltl.Not _ ->
         (* not part of the tableau core *)
         assert false)
  in
  let root = {
    id = fresh_id ();
    incoming = [ init_id ];
    to_process = Ltl.Set.singleton formula;
    old = Ltl.Set.empty;
    next = Ltl.Set.empty;
  }
  in
  expand root;
  !completed

let literals_of_old old =
  Ltl.Set.fold
    (fun f acc ->
       match f with
       | Ltl.Prop p -> (p, true) :: acc
       | Ltl.Not (Ltl.Prop p) -> (p, false) :: acc
       | Ltl.True | Ltl.False | Ltl.Not _ | Ltl.And _ | Ltl.Or _
       | Ltl.Implies _ | Ltl.Iff _ | Ltl.Next _ | Ltl.Eventually _
       | Ltl.Always _ | Ltl.Until _ | Ltl.Weak_until _ | Ltl.Release _ ->
         acc)
    old []

let until_subformulas formula =
  List.filter
    (fun f -> match f with Ltl.Until _ -> true | _ -> false)
    (Ltl.subformulas formula)

(* Build the generalized Büchi automaton, then degeneralize with the
   usual acceptance counter. *)
let build ?budget formula =
  (* Interning the core makes the tableau's many [Ltl.Set] operations
     short-circuit on physical equality of shared subterms. *)
  let core = Ltl.intern (to_core formula) in
  let nodes = build_tableau ?budget core in
  let untils = until_subformulas core in
  (* Map tableau ids to dense indices; index 0 is the dedicated initial
     state (GPVW's "init" pseudo-node). *)
  let index_of = Hashtbl.create 64 in
  Hashtbl.add index_of init_id 0;
  List.iteri (fun i node -> Hashtbl.add index_of node.id (i + 1)) nodes;
  let num_gba_states = List.length nodes + 1 in
  let gba_transitions =
    List.concat_map
      (fun node ->
         let guard = literals_of_old node.old in
         let dst = Hashtbl.find index_of node.id in
         List.filter_map
           (fun src_id ->
              match Hashtbl.find_opt index_of src_id with
              | Some src -> Some (src, guard, dst)
              | None -> None)
           node.incoming)
      nodes
  in
  (* Acceptance sets: one per Until; node accepting for (g U h) when
     h ∈ old or (g U h) ∉ old.  The init state belongs to every set
     vacuously (it is visited once). *)
  let acceptance_sets =
    List.map
      (fun u ->
         let target =
           match u with Ltl.Until (_, h) -> h | _ -> assert false
         in
         let member = Array.make num_gba_states false in
         member.(0) <- true;
         List.iter
           (fun node ->
              let idx = Hashtbl.find index_of node.id in
              if Ltl.Set.mem target node.old || not (Ltl.Set.mem u node.old)
              then member.(idx) <- true)
           nodes;
         member)
      untils
  in
  let sets =
    match acceptance_sets with
    | [] -> [| Array.make num_gba_states true |]
    | _ -> Array.of_list acceptance_sets
  in
  let num_sets = Array.length sets in
  (* Textbook source-credited degeneralization (Baier–Katoen): states
     (q, j); a transition leaving (q, j) advances the counter exactly
     when q ∈ sets.(j); accepting states are (q, 0) with q ∈ sets.(0).
     Visiting them infinitely often forces every set to recur. *)
  let state_index q j = (q * num_sets) + j in
  let num_states = num_gba_states * num_sets in
  let accepting = Array.make num_states false in
  for q = 0 to num_gba_states - 1 do
    if sets.(0).(q) then accepting.(state_index q 0) <- true
  done;
  let transitions =
    List.concat_map
      (fun (src, guard, dst) ->
         let transition_at j =
           let j' = if sets.(j).(src) then (j + 1) mod num_sets else j in
           (state_index src j, guard, state_index dst j')
         in
         List.init num_sets transition_at)
      gba_transitions
  in
  let module String_set = Set.Make (String) in
  let atoms =
    List.fold_left
      (fun acc (_, guard, _) ->
         List.fold_left (fun acc (p, _) -> String_set.add p acc) acc guard)
      String_set.empty transitions
    |> String_set.elements
  in
  {
    num_states;
    initial = [ state_index 0 0 ];
    accepting;
    transitions;
    atoms;
  }

(* The automaton for a formula is deterministic in the formula alone,
   so ungoverned construction is memoized by formula id.  Two callers
   must bypass the cache: a [Some] budget (fuel is charged per tableau
   node, and a cached automaton would skip those checkpoints — the
   deterministic-exhaustion tests rely on them), and an armed fault
   plan (checkpoint hit counts must see every expansion). *)

module C = Speccc_cache.Cache.Make (Speccc_cache.Cache.Int_key)

let table =
  C.create_dls ~name:"nbw.of_ltl"
    ~capacity:(Speccc_cache.Cache.capacity ~name:"nbw.of_ltl" ~default:256)
    ()

(* Template-compiled automata: formulas that instantiate a catalogue
   template shape ([Template.abstract]) share one compiled automaton
   per shape; an instance is served by renaming the compiled guards,
   which is linear in the automaton instead of exponential in the
   formula.  The shape cache ["nbw.template"] keys on the canonical
   formula's id; its hits count instantiations that bypassed the
   tableau, its misses count shape compilations. *)

let template_table =
  C.create_dls ~name:"nbw.template"
    ~capacity:(Speccc_cache.Cache.capacity ~name:"nbw.template" ~default:1024)
    ()

let rename_atoms mapping auto =
  let rename a =
    match List.assoc_opt a mapping with Some b -> b | None -> a
  in
  {
    auto with
    transitions =
      List.map
        (fun (src, guard, dst) ->
           (src, List.map (fun (a, b) -> (rename a, b)) guard, dst))
        auto.transitions;
    atoms = List.sort_uniq compare (List.map rename auto.atoms);
  }

let of_template formula =
  match Template.abstract formula with
  | None -> None
  | Some { Template.canonical; mapping; _ } ->
    let compiled =
      C.memo
        (Domain.DLS.get template_table)
        (Ltl.id canonical)
        (fun () -> build canonical)
    in
    Some (rename_atoms mapping compiled)

let of_ltl ?budget formula =
  match budget with
  | Some _ -> build ?budget formula
  | None ->
    if Speccc_runtime.Fault.active () then build formula
    else
      C.memo (Domain.DLS.get table) (Ltl.id formula)
        (fun () ->
           match of_template formula with
           | Some auto -> auto
           | None -> build formula)

let guard_holds guard assignment =
  List.for_all
    (fun (p, expected) ->
       let actual =
         match List.assoc_opt p assignment with Some b -> b | None -> false
       in
       actual = expected)
    guard

let successors auto state letter =
  List.filter_map
    (fun (src, guard, dst) ->
       if src = state && guard_holds guard letter then Some dst else None)
    auto.transitions

let accepts_lasso auto word =
  let n = Trace.length word in
  let loop_start = Trace.loop_start word in
  let succ_pos i = if i + 1 < n then i + 1 else loop_start in
  let product_index q pos = (q * n) + pos in
  let num_product = auto.num_states * n in
  (* adjacency of the product graph *)
  let adjacency = Array.make num_product [] in
  List.iter
    (fun (src, guard, dst) ->
       for pos = 0 to n - 1 do
         if guard_holds guard (Trace.letter_at word pos) then
           adjacency.(product_index src pos) <-
             product_index dst (succ_pos pos)
             :: adjacency.(product_index src pos)
       done)
    auto.transitions;
  let reachable_from sources =
    let visited = Array.make num_product false in
    let queue = Queue.create () in
    List.iter
      (fun s ->
         if not visited.(s) then begin
           visited.(s) <- true;
           Queue.add s queue
         end)
      sources;
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun next ->
           if not visited.(next) then begin
             visited.(next) <- true;
             Queue.add next queue
           end)
        adjacency.(s)
    done;
    visited
  in
  let from_init =
    reachable_from (List.map (fun q -> product_index q 0) auto.initial)
  in
  (* Iterative Tarjan SCC over the product graph; the word is accepted
     iff a reachable non-trivial SCC (or a self-loop) contains an
     accepting product state. *)
  let index = Array.make num_product (-1) in
  let lowlink = Array.make num_product 0 in
  let on_stack = Array.make num_product false in
  let stack = ref [] in
  let next_index = ref 0 in
  let accepted = ref false in
  let is_accepting s = auto.accepting.(s / n) in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) = -1 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adjacency.(v);
    if lowlink.(v) = index.(v) then begin
      (* Pop the SCC rooted at v. *)
      let rec pop members =
        match !stack with
        | [] -> members
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: members else pop (w :: members)
      in
      let members = pop [] in
      let non_trivial =
        match members with
        | [ single ] -> List.mem single adjacency.(single)
        | _ -> true
      in
      if non_trivial && List.exists is_accepting members then
        accepted := true
    end
  in
  for s = 0 to num_product - 1 do
    if from_init.(s) && index.(s) = -1 then strongconnect s
  done;
  !accepted

(* Witness search: BFS to a reachable accepting state, then BFS back to
   it (at least one step).  Guards along the way are instantiated into
   letters, unconstrained atoms defaulting to false. *)
let find_word auto =
  let adjacency = Array.make auto.num_states [] in
  List.iter
    (fun (src, guard, dst) ->
       adjacency.(src) <- (guard, dst) :: adjacency.(src))
    auto.transitions;
  let letter_of_guard guard =
    List.map
      (fun atom ->
         ( atom,
           match List.assoc_opt atom guard with
           | Some b -> b
           | None -> false ))
      auto.atoms
  in
  (* BFS from [sources]; returns the guard-labelled path to [target]
     (None when unreachable).  [min_one_step] forces a non-empty
     path. *)
  let bfs_path sources target ~min_one_step =
    let parent = Array.make auto.num_states None in
    let visited = Array.make auto.num_states false in
    let queue = Queue.create () in
    List.iter
      (fun s ->
         if not visited.(s) then begin
           visited.(s) <- true;
           Queue.add s queue
         end)
      sources;
    let found = ref None in
    if (not min_one_step) && List.mem target sources then found := Some target;
    while !found = None && not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun (guard, dst) ->
           if !found = None then
             if dst = target then begin
               parent.(dst) <- Some (s, guard);
               found := Some dst
             end
             else if not visited.(dst) then begin
               visited.(dst) <- true;
               parent.(dst) <- Some (s, guard);
               Queue.add dst queue
             end)
        adjacency.(s)
    done;
    match !found with
    | None -> None
    | Some _ ->
      let rec rebuild s acc =
        match parent.(s) with
        | None -> acc
        | Some (prev, guard) ->
          if List.mem prev sources then guard :: acc
          else rebuild prev (guard :: acc)
      in
      Some (rebuild target [])
  in
  let rec try_accepting q =
    if q >= auto.num_states then None
    else if not auto.accepting.(q) then try_accepting (q + 1)
    else
      match bfs_path auto.initial q ~min_one_step:false with
      | None -> try_accepting (q + 1)
      | Some prefix_guards ->
        (* a cycle back to q, at least one step *)
        (match bfs_path [ q ] q ~min_one_step:true with
         | None -> try_accepting (q + 1)
         | Some loop_guards ->
           let prefix = List.map letter_of_guard prefix_guards in
           let loop = List.map letter_of_guard loop_guards in
           let loop = if loop = [] then [ letter_of_guard [] ] else loop in
           Some (Trace.make ~prefix ~loop))
  in
  try_accepting 0

let is_empty auto = find_word auto = None

let size_report auto =
  Printf.sprintf "states=%d transitions=%d atoms=%d" auto.num_states
    (List.length auto.transitions)
    (List.length auto.atoms)

let pp_dot ppf auto =
  Format.fprintf ppf "digraph nbw {@\n";
  List.iter
    (fun q -> Format.fprintf ppf "  s%d [style=bold];@\n" q)
    auto.initial;
  Array.iteri
    (fun q acc ->
       if acc then Format.fprintf ppf "  s%d [shape=doublecircle];@\n" q)
    auto.accepting;
  List.iter
    (fun (src, guard, dst) ->
       let label =
         String.concat " & "
           (List.map (fun (p, b) -> if b then p else "!" ^ p) guard)
       in
       Format.fprintf ppf "  s%d -> s%d [label=\"%s\"];@\n" src dst label)
    auto.transitions;
  Format.fprintf ppf "}@\n"
