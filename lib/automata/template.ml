open Speccc_logic

type abstraction = {
  template : string;
  arity : int;
  canonical : Ltl.t;
  mapping : (string * string) list;
}

let slot_name k = Printf.sprintf "__slot%d" k

(* Simultaneous atom substitution.  Applying the whole map at once
   keeps the renaming correct even when a concrete atom is itself
   named like a slot (the map is a bijection, not a rewrite system). *)
let rec map_atoms subst formula =
  let recurse = map_atoms subst in
  match formula with
  | Ltl.True | Ltl.False -> formula
  | Ltl.Prop a ->
    (match List.assoc_opt a subst with
     | Some b -> Ltl.Prop b
     | None -> formula)
  | Ltl.Not g -> Ltl.Not (recurse g)
  | Ltl.And (g, h) -> Ltl.And (recurse g, recurse h)
  | Ltl.Or (g, h) -> Ltl.Or (recurse g, recurse h)
  | Ltl.Implies (g, h) -> Ltl.Implies (recurse g, recurse h)
  | Ltl.Iff (g, h) -> Ltl.Iff (recurse g, recurse h)
  | Ltl.Next g -> Ltl.Next (recurse g)
  | Ltl.Eventually g -> Ltl.Eventually (recurse g)
  | Ltl.Always g -> Ltl.Always (recurse g)
  | Ltl.Until (g, h) -> Ltl.Until (recurse g, recurse h)
  | Ltl.Weak_until (g, h) -> Ltl.Weak_until (recurse g, recurse h)
  | Ltl.Release (g, h) -> Ltl.Release (recurse g, recurse h)

(* Atoms in first-occurrence order, left to right. *)
let atoms_in_order formula =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec walk = function
    | Ltl.True | Ltl.False -> ()
    | Ltl.Prop a ->
      if not (Hashtbl.mem seen a) then begin
        Hashtbl.add seen a ();
        order := a :: !order
      end
    | Ltl.Not g | Ltl.Next g | Ltl.Eventually g | Ltl.Always g -> walk g
    | Ltl.And (g, h) | Ltl.Or (g, h) | Ltl.Implies (g, h) | Ltl.Iff (g, h)
    | Ltl.Until (g, h) | Ltl.Weak_until (g, h) | Ltl.Release (g, h) ->
      walk g;
      walk h
  in
  walk formula;
  List.rev !order

let abstract formula =
  match Speccc_patterns.Patterns.recognize formula with
  | None -> None
  | Some instance ->
    let atoms = atoms_in_order formula in
    let forward = List.mapi (fun k a -> (a, slot_name k)) atoms in
    let mapping = List.mapi (fun k a -> (slot_name k, a)) atoms in
    Some
      {
        template =
          Speccc_patterns.Patterns.pattern_name instance.Speccc_patterns.Patterns.pattern;
        arity = List.length atoms;
        canonical = Ltl.intern (map_atoms forward formula);
        mapping;
      }
