(** Nondeterministic Büchi automata from LTL, via the classic tableau
    construction of Gerth, Peled, Vardi and Wolper (GPVW), followed by
    counter-based degeneralization.

    Transition guards are conjunctions of literals (partial
    assignments): a guard [[("a", true); ("b", false)]] is enabled by
    every letter where [a] holds and [b] does not, regardless of other
    propositions. *)

type guard = (string * bool) list
(** Conjunction of literals; the empty guard is [true].  Guards
    produced by the construction never bind the same proposition
    twice. *)

type t = {
  num_states : int;
  initial : int list;
  accepting : bool array;  (** length [num_states] *)
  transitions : (int * guard * int) list;
  atoms : string list;     (** propositions mentioned by the guards *)
}

val of_ltl : ?budget:Speccc_runtime.Budget.t -> Speccc_logic.Ltl.t -> t
(** Büchi automaton accepting exactly the models of the formula.  When
    [budget] is given, one fuel unit is spent per tableau node (stage
    ["tableau"]) and exhaustion raises
    [Speccc_runtime.Runtime.Interrupt]; the fault checkpoint
    ["tableau.expand"] is announced per node.

    Ungoverned construction (no [budget], no armed fault plan) is
    memoized per domain by formula id (cache ["nbw.of_ltl"]), so
    repeated translations of the same formula — e.g. across the
    bound-escalation loops of the explicit and SAT engines — are
    free.  On a formula-cache miss, formulas that instantiate a
    catalogue template shape ({!Template.abstract}) are served by atom
    substitution into one compiled automaton per shape (cache
    ["nbw.template"]) instead of running the tableau.  Governed calls
    always rebuild, preserving per-node fuel accounting and
    fault-checkpoint hit counts. *)

val guard_holds : guard -> (string * bool) list -> bool
(** Is the guard enabled by the (total or partial, missing = false)
    assignment? *)

val successors : t -> int -> (string * bool) list -> int list
(** States reachable from a state under a letter. *)

val accepts_lasso : t -> Speccc_logic.Trace.t -> bool
(** Membership test for an ultimately periodic word (used to validate
    the construction against {!Speccc_logic.Trace.holds}). *)

val find_word : t -> Speccc_logic.Trace.t option
(** A lasso word the automaton accepts, or [None] when its language is
    empty.  Letters instantiate the guards along the witness (unbound
    propositions default to false).  Emptiness of [of_ltl f] decides
    satisfiability of [f]; the witness is a model. *)

val is_empty : t -> bool

val size_report : t -> string
(** One-line diagnostic summary. *)

val pp_dot : Format.formatter -> t -> unit
