(** Bounded memoization caches with shared statistics.

    Every cache created through {!Make.create} registers itself under a
    name; {!stats} aggregates hit/miss/eviction counters across all
    instances that share a name (one instance per domain is the normal
    pattern — see {!Make.create_dls}).  A global {!set_enabled} switch
    turns every cache into a pass-through, which the test-suite uses to
    show that verdicts do not depend on memoization. *)

type stats = {
  name : string;        (** registration name, e.g. ["nbw.of_ltl"] *)
  hits : int;
  misses : int;
  evictions : int;
  size : int;           (** live entries across all same-named instances *)
  capacity : int;       (** per-instance bound *)
}

val capacity : name:string -> default:int -> int
(** Central sizing table: the configured capacity for a cache name, or
    [default] when the name has no entry.  Call sites create caches
    with [~capacity:(capacity ~name ~default:...)] so every budget
    lives in one table in this module. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Disable ([false]) or re-enable ([true]) every cache globally.
    While disabled, {!Make.memo} always recomputes and no counters
    move.  Intended for correctness A/B tests, not production. *)

val stats : unit -> stats list
(** Aggregated counters for every cache name seen so far, sorted by
    name.  Thread-safe. *)

val reset : unit -> unit
(** Clear all registered cache instances and zero their counters. *)

val shed : unit -> unit
(** Drop every entry from every registered instance but keep the
    hit/miss counters (each dropped entry counts as an eviction) —
    the memory-watermark shedding hook
    ({!Speccc_runtime.Memwatch.on_soft}).  Safe to call from any
    thread: instances are single-domain for {e lookups}, but a shed
    only unlinks entries, and the worst race outcome is a recomputed
    memo. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)

val pp_stats : Format.formatter -> stats list -> unit
(** Render one aligned line per cache, as printed under [--stats]. *)

(** Hashtbl-style keys; equality and hash must agree. *)
module type KEY = sig
  type t
  val equal : t -> t -> bool
  val hash : t -> int
end

module Int_key : KEY with type t = int
(** Formula ids ({!val:Speccc_logic.Ltl.id}) and small packed keys. *)

module Int_list_key : KEY with type t = int list
(** Sorted id-sets, e.g. conjunction sets in [Localize]. *)

module String_key : KEY with type t = string
(** Textual keys, e.g. requirement sentences in the parse cache. *)

module Make (K : KEY) : sig
  type 'a t

  val create : name:string -> capacity:int -> unit -> 'a t
  (** A fresh LRU instance holding at most [capacity] entries.
      Instances are not thread-safe; create one per domain. *)

  val create_dls : name:string -> capacity:int -> unit -> 'a t Domain.DLS.key
  (** A domain-local cache: each domain that touches the key lazily
      gets its own instance registered under the same [name]. *)

  val find_opt : 'a t -> K.t -> 'a option
  val add : 'a t -> K.t -> 'a -> unit

  val memo : 'a t -> K.t -> (unit -> 'a) -> 'a
  (** [memo c k f] returns the cached value for [k], or runs [f],
      stores the result, and returns it.  When caching is disabled
      globally this is just [f ()]. *)

  val length : 'a t -> int
  val clear : 'a t -> unit
end
