(* Bounded LRU memoization with a process-wide stats registry.

   Design notes:
   - Instances are single-domain: callers keep one per domain (usually
     via [create_dls]) so lookups never take a lock.  Only the registry
     of stats/clear closures is shared, behind one mutex.
   - The LRU list is an intrusive doubly-linked list threaded through
     the hashtable's payload nodes, so hit/add/evict are all O(1).
   - [set_enabled false] makes [memo] a pass-through without touching
     counters, so an A/B test sees the uncached baseline exactly. *)

type stats = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled value = Atomic.set enabled_flag value

(* ---------- capacity table ----------

   One place to size every named cache: call sites pass their
   historical size as [default] and this table overrides it, so tuning
   a cache budget is a one-line change here instead of a hunt across
   libraries.  The automaton cache is the big one: 256 entries
   thrashed on specifications with a few hundred distinct requirement
   formulas — every negation, every bounded-liveness rewrite and every
   localize subset is its own key. *)

let capacities =
  [ ("nbw.of_ltl", 16384); ("nbw.template", 1024); ("nlp.parse", 2048);
    ("watch.verdict", 128) ]

let capacity ~name ~default =
  match List.assoc_opt name capacities with
  | Some c -> c
  | None -> default

(* ---------- registry ---------- *)

type registered = {
  reg_name : string;
  snapshot : unit -> stats;
  wipe : unit -> unit;
  drop : unit -> unit;    (* entries only; counters survive as evictions *)
}

let registry : registered list ref = ref []
let registry_lock = Mutex.create ()

let register entry =
  Mutex.lock registry_lock;
  registry := entry :: !registry;
  Mutex.unlock registry_lock

let registered () =
  Mutex.lock registry_lock;
  let entries = !registry in
  Mutex.unlock registry_lock;
  entries

let stats () =
  let merged = Hashtbl.create 8 in
  List.iter
    (fun entry ->
       let s = entry.snapshot () in
       match Hashtbl.find_opt merged s.name with
       | None -> Hashtbl.replace merged s.name s
       | Some acc ->
         Hashtbl.replace merged s.name
           { acc with
             hits = acc.hits + s.hits;
             misses = acc.misses + s.misses;
             evictions = acc.evictions + s.evictions;
             size = acc.size + s.size })
    (registered ());
  Hashtbl.fold (fun _ s acc -> s :: acc) merged []
  |> List.sort (fun a b -> String.compare a.name b.name)

let reset () = List.iter (fun entry -> entry.wipe ()) (registered ())
let shed () = List.iter (fun entry -> entry.drop ()) (registered ())

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let pp_stats fmt entries =
  let width =
    List.fold_left (fun acc s -> max acc (String.length s.name)) 0 entries
  in
  List.iter
    (fun s ->
       Format.fprintf fmt "%-*s  hits=%-8d misses=%-8d evict=%-6d \
                           size=%d/%d  rate=%.1f%%@."
         width s.name s.hits s.misses s.evictions s.size s.capacity
         (100. *. hit_rate s))
    entries

(* ---------- LRU instances ---------- *)

module type KEY = sig
  type t
  val equal : t -> t -> bool
  val hash : t -> int
end

module Int_key = struct
  type t = int
  let equal = Int.equal
  let hash = Hashtbl.hash
end

module Int_list_key = struct
  type t = int list
  let equal = List.equal Int.equal
  let hash = Hashtbl.hash
end

module String_key = struct
  type t = string
  let equal = String.equal
  let hash = Hashtbl.hash
end

module Make (K : KEY) = struct
  module H = Hashtbl.Make (K)

  type 'a node = {
    key : K.t;
    value : 'a;
    mutable newer : 'a node option;
    mutable older : 'a node option;
  }

  type 'a t = {
    table : 'a node H.t;
    capacity : int;
    mutable newest : 'a node option;
    mutable oldest : 'a node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let unlink t node =
    (match node.newer with
     | Some n -> n.older <- node.older
     | None -> t.newest <- node.older);
    (match node.older with
     | Some n -> n.newer <- node.newer
     | None -> t.oldest <- node.newer);
    node.newer <- None;
    node.older <- None

  let push_newest t node =
    node.older <- t.newest;
    (match t.newest with
     | Some n -> n.newer <- Some node
     | None -> t.oldest <- Some node);
    t.newest <- Some node

  let length t = H.length t.table

  let clear t =
    H.reset t.table;
    t.newest <- None;
    t.oldest <- None;
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0

  (* memory shedding, not a stats reset: every live entry counts as an
     eviction so the [--stats] picture shows the shed happened *)
  let drop_entries t =
    let n = length t in
    H.reset t.table;
    t.newest <- None;
    t.oldest <- None;
    t.evictions <- t.evictions + n

  let create ~name ~capacity () =
    let t =
      { table = H.create (min capacity 64);
        capacity = max 1 capacity;
        newest = None;
        oldest = None;
        hits = 0;
        misses = 0;
        evictions = 0 }
    in
    register
      { reg_name = name;
        snapshot =
          (fun () ->
             { name;
               hits = t.hits;
               misses = t.misses;
               evictions = t.evictions;
               size = length t;
               capacity = t.capacity });
        wipe = (fun () -> clear t);
        drop = (fun () -> drop_entries t) };
    t

  let create_dls ~name ~capacity () =
    Domain.DLS.new_key (fun () -> create ~name ~capacity ())

  let find_opt t key =
    if not (enabled ()) then None
    else
      match H.find_opt t.table key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_newest t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None

  let evict_oldest t =
    match t.oldest with
    | None -> ()
    | Some node ->
      unlink t node;
      H.remove t.table node.key;
      t.evictions <- t.evictions + 1

  let add t key value =
    if enabled () then begin
      (match H.find_opt t.table key with
       | Some stale -> unlink t stale; H.remove t.table key
       | None -> ());
      if H.length t.table >= t.capacity then evict_oldest t;
      let node = { key; value; newer = None; older = None } in
      H.replace t.table key node;
      push_newest t node
    end

  let memo t key compute =
    match find_opt t key with
    | Some value -> value
    | None ->
      let value = compute () in
      add t key value;
      value
end
