exception Error of string

type diagnostic = {
  diag_message : string;
  diag_line : int;
  diag_start : int;
  diag_end : int;
}

(* Internal: a failure that remembers the offending words so
   [sentence_result] can point at them in the source text.  Confined
   to this module; the public surface re-raises plain [Error] (the
   historical contract) or returns a [diagnostic]. *)
exception Located of string * string list

let fail_at words fmt =
  Printf.ksprintf (fun msg -> raise (Located (msg, words))) fmt

let fail fmt = fail_at [] fmt

(* Map the (lowercased) culprit tokens back to a character span in the
   original sentence.  Best-effort: an unlocatable culprit widens to
   the whole sentence, so diagnostics never raise. *)
let span_of_words text words =
  let lower = String.lowercase_ascii text in
  let length = String.length lower in
  let find_from start word =
    let wl = String.length word in
    let boundary i = i < 0 || i >= length || not (Tokenizer.is_word_char lower.[i]) in
    let rec go i =
      if wl = 0 || i + wl > length then None
      else if String.sub lower i wl = word && boundary (i - 1) && boundary (i + wl)
      then Some i
      else go (i + 1)
    in
    go start
  in
  match words with
  | [] -> (0, length)
  | first :: rest ->
    (match find_from 0 first with
     | None -> (0, length)
     | Some start ->
       let stop =
         List.fold_left
           (fun acc word ->
              match find_from acc word with
              | Some i -> i + String.length word
              | None -> acc)
           (start + String.length first) rest
       in
       (start, stop))

let pp_diagnostic ppf diag =
  if diag.diag_line > 0 then
    Format.fprintf ppf "line %d, " diag.diag_line;
  Format.fprintf ppf "columns %d-%d: %s" (diag.diag_start + 1) diag.diag_end
    diag.diag_message

(* ---------- segmentation ---------- *)

type segment = {
  seg_subordinator : string option;
  seg_words : string list;  (* in order *)
}

let is_subordinator lexicon word =
  word <> "next" && Lexicon.has_class lexicon word Lexicon.Subordinator

let is_conjunction lexicon word =
  Lexicon.has_class lexicon word Lexicon.Conjunction

(* Any subordinator may open a trailing subordinate clause without a
   preceding comma ("... is enabled until it is pressed", "... will be
   operational whenever the LSTAT is powered on"). *)
let mid_segment_subordinator _word = true

let segment_tokens lexicon tokens =
  let close segments sub words =
    match words with
    | [] -> segments
    | _ -> { seg_subordinator = sub; seg_words = List.rev words } :: segments
  in
  let rec walk segments sub words tokens =
    match tokens with
    | [] -> List.rev (close segments sub words)
    | Tokenizer.Period :: rest -> walk segments sub words rest
    | Tokenizer.Comma :: Tokenizer.Word w :: rest
      when is_conjunction lexicon w ->
      (* ", and" continues the current clause group *)
      walk segments sub (w :: words) rest
    | Tokenizer.Comma :: rest ->
      (* end of segment; a following subordinator opens the next one *)
      let segments = close segments sub words in
      (match rest with
       | Tokenizer.Word w :: rest' when is_subordinator lexicon w ->
         walk segments (Some w) [] rest'
       | _ -> walk segments None [] rest)
    | Tokenizer.Word w :: rest when words = [] && sub = None
                                 && is_subordinator lexicon w ->
      walk segments (Some w) [] rest
    | Tokenizer.Word w :: rest when words <> []
                                 && mid_segment_subordinator w
                                 && is_subordinator lexicon w ->
      let segments = close segments sub words in
      walk segments (Some w) [] rest
    | Tokenizer.Word w :: rest -> walk segments sub (w :: words) rest
  in
  walk [] None [] tokens

(* ---------- clause parsing ---------- *)

let filter_words =
  [ "the"; "a"; "an"; "both"; "all"; "either"; "this"; "that"; "its";
    "their"; "some"; "any"; "each"; "every"; "then" ]

let is_filter word = List.mem word filter_words

let is_modifier lexicon word =
  Lexicon.has_class lexicon word Lexicon.Modifier || word = "next"

let is_copula lexicon word = Lexicon.has_class lexicon word Lexicon.Copula
let is_modal lexicon word = Lexicon.has_class lexicon word Lexicon.Modal
let is_negation lexicon word = Lexicon.has_class lexicon word Lexicon.Negation

(* Index of the first word that can start the predicate. *)
let find_predicate_start lexicon words =
  let arr = Array.of_list words in
  let n = Array.length arr in
  let rec search i subject_seen =
    if i >= n then None
    else
      let w = arr.(i) in
      if is_copula lexicon w || is_modal lexicon w || w = "cannot" then Some i
      else if
        (match Morphology.analyze_verb lexicon w with
         | Some (_, Morphology.Third_singular) ->
           (* unambiguous finite form; may even open a clause whose
              subject is inherited ("... and triggers an alarm") *)
           not (Lexicon.has_class lexicon w Lexicon.Noun)
         | Some (_, Morphology.Base) ->
           subject_seen && not (Lexicon.has_class lexicon w Lexicon.Noun)
         | Some (_, Morphology.Past) ->
           subject_seen && not (Lexicon.has_class lexicon w Lexicon.Adjective)
         | Some (_, (Morphology.Past_participle | Morphology.Present_participle))
         | None -> false)
      then Some i
      else
        let counts_as_subject =
          (not (is_filter w))
          && (not (is_modifier lexicon w))
          && not (is_negation lexicon w)
        in
        search (i + 1) (subject_seen || counts_as_subject)
  in
  search 0 false

let parse_subject lexicon words =
  let substantives = ref [] in
  let current = ref [] in
  let conj = ref Syntax.And in
  let flush () =
    match !current with
    | [] -> ()
    | phrase ->
      substantives := List.rev phrase :: !substantives;
      current := []
  in
  List.iter
    (fun w ->
       if is_conjunction lexicon w then begin
         if w = "or" then conj := Syntax.Or;
         flush ()
       end
       else if is_filter w || is_modifier lexicon w then ()
       else current := w :: !current)
    words;
  flush ();
  { Syntax.nouns = List.rev !substantives; noun_conj = !conj }

let particles = [ "on"; "off"; "in"; "out"; "up"; "down" ]

(* Parse the predicate and trailing material (objects, time bound)
   starting at the predicate head.  Returns the predicate, the time
   bound, an optional modifier discovered inside the predicate, and
   the unconsumed words (starting with a conjunction when another
   clause follows). *)
let parse_predicate lexicon words =
  let modality = ref None in
  let negated = ref false in
  let passive = ref false in
  let complement = ref None in
  let verb = ref None in
  let modifier = ref None in
  let rec head = function
    | [] -> fail "predicate expected but the clause ended"
    | w :: rest when w = "cannot" ->
      modality := Some "can";
      negated := not !negated;
      head rest
    | w :: rest when is_modal lexicon w ->
      if !modality = None then modality := Some w;
      head rest
    | w :: rest when is_negation lexicon w ->
      negated := not !negated;
      head rest
    | w :: rest when is_modifier lexicon w ->
      modifier := Some w;
      head rest
    | w :: rest when is_copula lexicon w ->
      copula_content rest
    | w :: rest ->
      (match Morphology.analyze_verb lexicon w with
       | Some (lemma, _) ->
         verb := Some lemma;
         rest
       | None -> fail_at [ w ] "cannot interpret %S as a verb" w)
  and copula_content = function
    | [] ->
      (* bare copula: "the system is" — incomplete *)
      fail "copula without content"
    | w :: rest when is_negation lexicon w ->
      negated := not !negated;
      copula_content rest
    | w :: rest when is_modifier lexicon w ->
      modifier := Some w;
      copula_content rest
    | w :: rest when is_copula lexicon w ->
      (* "will be inflated": second copula *)
      copula_content rest
    | w :: rest ->
      let participle =
        match Morphology.analyze_verb lexicon w with
        | Some (lemma, (Morphology.Past | Morphology.Past_participle
                       | Morphology.Present_participle)) ->
          Some lemma
        | Some (_, (Morphology.Base | Morphology.Third_singular)) | None ->
          None
      in
      let adjective =
        Lexicon.has_class lexicon w Lexicon.Adjective
        || Lexicon.has_class lexicon w Lexicon.Adverb
      in
      (match participle, adjective with
       | Some lemma, false ->
         verb := Some lemma;
         passive := true;
         (* drop a particle ("is plugged in" -> plug), but only at the
            end of the clause — "terminated in 3 seconds" keeps its
            time constraint *)
         (match rest with
          | p :: rest'
            when List.mem p particles
                 && (rest' = []
                     || is_conjunction lexicon (List.hd rest')) ->
            rest'
          | _ -> rest)
       | _, true ->
         complement := Some w;
         verb := Some "be";
         rest
       | None, false ->
         (* nominal complement: "X is the input" *)
         complement := Some w;
         verb := Some "be";
         rest)
  in
  let rest = head words in
  (* Trailing material: objects, "in t seconds", clause boundary. *)
  let objects = ref [] in
  let time_bound = ref None in
  let rec tail = function
    | [] -> []
    | w :: rest when is_conjunction lexicon w -> w :: rest
    | ("in" | "within") :: t :: rest
      when (match Lexicon.lookup lexicon t with
            | Lexicon.Number _ :: _ -> true
            | _ -> false) ->
      (match Lexicon.lookup lexicon t with
       | Lexicon.Number n :: _ -> time_bound := Some n
       | _ -> ());
      (match rest with
       | ("second" | "seconds" | "tick" | "ticks" | "minute" | "minutes")
         :: rest' ->
         tail rest'
       | _ -> tail rest)
    | w :: rest when is_modifier lexicon w ->
      modifier := Some w;
      tail rest
    | w :: rest ->
      if not (is_filter w || Lexicon.has_class lexicon w Lexicon.Preposition)
      then objects := w :: !objects;
      tail rest
  in
  let remaining = tail rest in
  let predicate = {
    Syntax.verb =
      (match !verb with
       | Some v -> v
       | None -> fail "no verb found in predicate");
    negated = !negated;
    modality = !modality;
    passive = !passive;
    complement = !complement;
    objects = List.rev !objects;
  }
  in
  (predicate, !time_bound, !modifier, remaining)

let parse_clause lexicon previous_subject words =
  (* leading modifier(s) *)
  let modifier = ref None in
  let rec strip_modifiers = function
    | w :: rest when is_modifier lexicon w ->
      modifier := Some w;
      strip_modifiers rest
    | words -> words
  in
  let words = strip_modifiers words in
  match find_predicate_start lexicon words with
  | None -> fail_at words "no predicate found in clause %S" (String.concat " " words)
  | Some idx ->
    let subject_words = List.filteri (fun i _ -> i < idx) words in
    let rest_words = List.filteri (fun i _ -> i >= idx) words in
    (* "the alarm never sounds": the adverbial negation sits between
       the subject and the verb; fold it into the predicate ("no" stays
       put — it is part of names like "confirmation no") *)
    let subject_words, pre_negated =
      match List.rev subject_words with
      | ("never" | "not") :: rest -> (List.rev rest, true)
      | _ -> (subject_words, false)
    in
    let subject = parse_subject lexicon subject_words in
    let subject =
      if subject.Syntax.nouns = [] then
        match previous_subject with
        | Some s -> s
        | None ->
          fail_at words "clause %S has no subject" (String.concat " " words)
      else subject
    in
    let predicate, time_bound, inner_modifier, remaining =
      parse_predicate lexicon rest_words
    in
    let predicate =
      if pre_negated then
        { predicate with Syntax.negated = not predicate.Syntax.negated }
      else predicate
    in
    let modifier =
      match !modifier, inner_modifier with
      | Some m, _ -> Some m
      | None, m -> m
    in
    ({ Syntax.modifier; subject; predicate; time_bound }, remaining)

let parse_clause_group lexicon words =
  let rec go previous_subject acc conjs words =
    let clause, remaining = parse_clause lexicon previous_subject words in
    let acc = clause :: acc in
    match remaining with
    | [] ->
      { Syntax.clauses = List.rev acc; clause_conjs = List.rev conjs }
    | conj_word :: rest when is_conjunction lexicon conj_word ->
      let conj = if conj_word = "or" then Syntax.Or else Syntax.And in
      go (Some clause.Syntax.subject) acc (conj :: conjs) rest
    | w :: _ -> fail_at [ w ] "unexpected word %S after clause" w
  in
  go None [] [] words

(* ---------- sentences ---------- *)

let sentence_located lexicon text =
  let tokens =
    try Tokenizer.tokenize text
    with Failure msg -> fail "%s" msg
  in
  let segments = segment_tokens lexicon tokens in
  if segments = [] then fail "empty sentence";
  let parse_segment seg = parse_clause_group lexicon seg.seg_words in
  (* The main clause group is the concatenation of all segments without
     a subordinator; subordinated segments before the first such
     segment lead, the others trail. *)
  let rec split leading main trailing = function
    | [] -> (List.rev leading, main, List.rev trailing)
    | seg :: rest ->
      (match seg.seg_subordinator with
       | Some sub ->
         let subclause =
           { Syntax.subordinator = sub; body = parse_segment seg }
         in
         if main = None then split (subclause :: leading) main trailing rest
         else split leading main (subclause :: trailing) rest
       | None ->
         let group = parse_segment seg in
         (match main with
          | None -> split leading (Some group) trailing rest
          | Some existing ->
            let merged = {
              Syntax.clauses = existing.Syntax.clauses @ group.Syntax.clauses;
              clause_conjs =
                existing.Syntax.clause_conjs
                @ (Syntax.And :: group.Syntax.clause_conjs);
            }
            in
            split leading (Some merged) trailing rest))
  in
  let leading, main, trailing = split [] None [] segments in
  match main with
  | None -> fail "sentence %S has no main clause" text
  | Some main -> { Syntax.leading; main; trailing }

let sentence lexicon text =
  try sentence_located lexicon text
  with Located (message, _) -> raise (Error message)

let sentence_result ?(line = 0) lexicon text =
  match sentence_located lexicon text with
  | tree -> Ok tree
  | exception Located (message, words) ->
    let diag_start, diag_end = span_of_words text words in
    Error { diag_message = message; diag_line = line; diag_start; diag_end }

let sentence_opt lexicon text =
  try Some (sentence lexicon text) with Error _ -> None

let specification lexicon text =
  List.map (sentence lexicon) (Tokenizer.split_sentences text)
