(** Tokenization of requirement sentences.

    Words are lowercased; hyphens and underscores are kept inside
    words ([auto-control] is one token); commas and periods become
    punctuation tokens; everything else splits on whitespace. *)

type token =
  | Word of string
  | Comma
  | Period

val is_word_char : char -> bool
(** Characters that may appear inside a word token (letters, digits,
    [-], [_], [']).  Exposed so diagnostics can re-locate tokens in
    the original text with the same word-boundary rule. *)

val tokenize : string -> token list
(** Raises [Failure] on characters outside the structured subset. *)

val split_sentences : string -> string list
(** Split a multi-sentence specification text on periods, dropping
    blank segments. *)

val pp_token : Format.formatter -> token -> unit
