(** Recursive-descent parser for the structured English grammar
    (Sec. IV-B), producing {!Syntax.sentence} trees and replacing the
    role the Stanford parser plays in the paper's prototype.

    Segmentation rules (derived from the appendix corpus):
    - a segment starting with a subordinator (if, when, whenever, once,
      while, after, before, until) is a subordinate clause group;
    - a comma followed by a conjunction continues the current clause
      group with a further clause;
    - a comma followed by anything else closes the current segment;
    - "until"/"before" occurring mid-segment opens a trailing
      subordinate clause even without a comma;
    - "next" is treated as a clause modifier (its use throughout the
      appendix), not as a segment opener. *)

exception Error of string

type diagnostic = {
  diag_message : string;
  diag_line : int;      (** 1-based source line; 0 when unknown *)
  diag_start : int;     (** 0-based char offset of the offending span *)
  diag_end : int;       (** exclusive end of the span *)
}
(** Where and why a sentence fell outside the grammar.  The span
    points at the offending word(s) in the sentence text when the
    failure names any, and covers the whole sentence otherwise. *)

val sentence : Lexicon.t -> string -> Syntax.sentence
(** Parse one requirement sentence.  Raises {!Error} with a diagnostic
    when the text falls outside the grammar. *)

val sentence_result :
  ?line:int -> Lexicon.t -> string -> (Syntax.sentence, diagnostic) result
(** Non-raising {!sentence}: a malformed requirement becomes an
    [Error diagnostic] carrying the source line (as passed by the
    caller, who knows the document layout) and the column span of the
    offending words — the error-recovery entry point document-level
    callers use to keep going with the remaining requirements. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** ["line L, columns A-B: message"] (columns are 1-based and
    inclusive; the line part is omitted when unknown). *)

val sentence_opt : Lexicon.t -> string -> Syntax.sentence option

val specification : Lexicon.t -> string -> Syntax.sentence list
(** Parse a multi-sentence specification (split on periods). *)
