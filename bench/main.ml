(* Benchmark harness regenerating every table and figure of the
   paper's evaluation (Sec. VI), plus ablations for the design choices
   called out in DESIGN.md.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe table1       -- Table I only
     dune exec bench/main.exe fig1         -- workflow-stage timings
     dune exec bench/main.exe fig2         -- Req-17 syntax tree
     dune exec bench/main.exe ablations    -- ablation studies
     dune exec bench/main.exe localize     -- localization scaling

   Timing methodology: each Table I row is a Bechamel [Test.make]
   measuring the stage-2 realizability check (the quantity the paper's
   "time(s)" column reports); absolute numbers are machine-dependent —
   the reproduction targets the *shape* (which rows are slow, who is
   consistent). *)

open Bechamel
open Speccc_logic
open Speccc_core
open Speccc_synthesis
open Speccc_partition
open Speccc_casestudies

(* ---------- bechamel plumbing ---------- *)

let measure_tests tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~stabilize:false
      ~quota:(Time.second 1.0) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" tests) in
  let results = Analyze.all ols (List.hd instances) raw in
  fun name ->
    match Hashtbl.find_opt results ("g/" ^ name) with
    | None -> nan
    | Some est ->
      (match Analyze.OLS.estimates est with
       | Some [ ns ] -> ns /. 1e9
       | Some _ | None -> nan)

(* ---------- shared preparation ---------- *)

type prepared_row = {
  row : Table1.row;
  formulas : Ltl.t list;
  partition : Partition.t;
}

let sym_options =
  { (Pipeline.default_options ()) with
    Pipeline.engine = Realizability.Symbolic }

let prepare_row row =
  match row.Table1.source with
  | Table1.Sentences texts ->
    let outcome = Pipeline.run ~options:sym_options texts in
    {
      row;
      formulas = outcome.Pipeline.formulas;
      partition = outcome.Pipeline.partition.Partition.partition;
    }
  | Table1.Formulas (formulas, inputs, outputs) ->
    { row; formulas; partition = { Partition.inputs; outputs } }

let check_prepared prepared =
  Realizability.check ~engine:Realizability.Symbolic
    ~inputs:prepared.partition.Partition.inputs
    ~outputs:prepared.partition.Partition.outputs prepared.formulas

let verdict_string = function
  | Realizability.Consistent -> "consistent"
  | Realizability.Inconsistent -> "INCONSISTENT"
  | Realizability.Inconclusive _ -> "fails (pre-fix)"

(* ---------- Table I ---------- *)

let table1 () =
  Format.printf "@.== Table I: experimental results ==@.";
  Format.printf
    "(times are Bechamel OLS estimates of the realizability check)@.@.";
  let prepared = List.map prepare_row Table1.rows in
  let tests =
    List.map
      (fun p ->
         let name = p.row.Table1.group ^ ":" ^ p.row.Table1.row_id in
         Test.make ~name
           (Staged.stage (fun () -> ignore (check_prepared p))))
      prepared
  in
  let time_of = measure_tests tests in
  Format.printf "%-6s %-5s %-35s %8s %4s %4s %10s  %s@." "Group" "No."
    "Specification" "formulas" "in" "out" "time(s)" "verdict";
  List.iter
    (fun p ->
       let name = p.row.Table1.group ^ ":" ^ p.row.Table1.row_id in
       let report = check_prepared p in
       let note =
         match p.row.Table1.expected, report.Realizability.verdict with
         | Table1.Inconsistent_until_partition_fix prop,
           (Realizability.Inconsistent | Realizability.Inconclusive _) ->
           let fixed =
             Partition.adjust p.partition ~to_output:[ prop ] ()
           in
           let report' =
             Realizability.check ~engine:Realizability.Symbolic
               ~inputs:fixed.Partition.inputs
               ~outputs:fixed.Partition.outputs p.formulas
           in
           Printf.sprintf " -> after partition fix: %s"
             (verdict_string report'.Realizability.verdict)
         | _ -> ""
       in
       Format.printf "%-6s %-5s %-35s %8d %4d %4d %10.4f  %s%s@."
         p.row.Table1.group p.row.Table1.row_id p.row.Table1.name
         (List.length p.formulas)
         (List.length p.partition.Partition.inputs)
         (List.length p.partition.Partition.outputs)
         (time_of name)
         (verdict_string report.Realizability.verdict)
         note)
    prepared

(* ---------- Figure 1: the three-stage workflow ---------- *)

let fig1 () =
  Format.printf "@.== Figure 1: workflow stages on CARA row 0 ==@.@.";
  let outcome = Pipeline.run ~options:sym_options Cara.working_mode_texts in
  let t = outcome.Pipeline.times in
  Format.printf "stage 1  translation (parse + reason + LTL): %8.4fs@."
    t.Pipeline.translation_s;
  Format.printf "stage 1' time abstraction (SMT):             %8.4fs@."
    t.Pipeline.abstraction_s;
  Format.printf "stage 1'' input/output partition:            %8.4fs@."
    t.Pipeline.partition_s;
  Format.printf "stage 2  realizability (synthesis):          %8.4fs@."
    t.Pipeline.synthesis_s;
  Format.printf "verdict: %s@."
    (verdict_string outcome.Pipeline.report.Realizability.verdict);

  Format.printf
    "@.-- the refinement loop (stage 3) on TELEPROMISE Information --@.@.";
  let app = List.nth Telepromise.applications 3 in
  let texts = Telepromise.application_sentences app in
  let outcome = Pipeline.run ~options:sym_options texts in
  let partition = outcome.Pipeline.partition.Partition.partition in
  Format.printf "iteration 1: check -> %s@."
    (verdict_string outcome.Pipeline.report.Realizability.verdict);
  let check_subset formulas =
    let _, report = Pipeline.check_formulas ~options:sym_options formulas in
    report.Realizability.verdict = Realizability.Consistent
  in
  let check_partition p =
    let _, report =
      Pipeline.check_formulas ~options:sym_options ~partition:p
        outcome.Pipeline.formulas
    in
    report.Realizability.verdict = Realizability.Consistent
  in
  let t0 = Unix.gettimeofday () in
  let suggestion =
    Refine.suggest ~check_subset ~check_partition ~partition
      outcome.Pipeline.formulas
  in
  Format.printf "iteration 2: localize + adjust (%.2fs)@."
    (Unix.gettimeofday () -. t0);
  (match suggestion.Refine.localization with
   | Some localization ->
     Format.printf "  culprit requirement index: %d@."
       localization.Localize.culprit
   | None -> ());
  Format.printf "  %s@." suggestion.Refine.advice;
  (match suggestion.Refine.adjustment with
   | Some adjustment ->
     let _, report =
       Pipeline.check_formulas ~options:sym_options
         ~partition:adjustment.Refine.partition outcome.Pipeline.formulas
     in
     Format.printf "iteration 3: re-check -> %s@."
       (verdict_string report.Realizability.verdict)
   | None -> ())

(* ---------- Figure 2 ---------- *)

let fig2 () =
  Format.printf "@.== Figure 2: syntax tree of Req-17 ==@.@.";
  let lexicon = Speccc_nlp.Lexicon.default () in
  let text =
    "When auto-control mode is entered, eventually the cuff will be \
     inflated."
  in
  let tree = Speccc_nlp.Parser.sentence lexicon text in
  Format.printf "%a@." Speccc_nlp.Syntax.pp_sentence tree

(* ---------- ablations ---------- *)

let ablation_timeabs () =
  Format.printf "@.== Ablation: time abstraction (Sec. IV-E) ==@.@.";
  Format.printf "%-28s %10s %8s %8s@." "Θ (budget 5)" "method" "ΣX" "Σ|Δ|";
  let theta_sets = [
    [ 3; 180; 60 ];
    [ 2; 4; 8; 16 ];
    [ 7; 13; 29 ];
    [ 10; 100; 1000 ];
    [ 5; 50; 500; 45; 450 ];
  ]
  in
  List.iter
    (fun thetas ->
       let label =
         "{" ^ String.concat "," (List.map string_of_int thetas) ^ "}"
       in
       let gcd = Speccc_timeabs.Timeabs.gcd_solution thetas in
       let opt =
         Speccc_timeabs.Timeabs.solve_smt
           (Speccc_timeabs.Timeabs.problem ~budget:5 thetas)
       in
       Format.printf "%-28s %10s %8d %8d@." label "gcd"
         gcd.Speccc_timeabs.Timeabs.x_total
         gcd.Speccc_timeabs.Timeabs.error_total;
       Format.printf "%-28s %10s %8d %8d@." "" "optimized"
         opt.Speccc_timeabs.Timeabs.x_total
         opt.Speccc_timeabs.Timeabs.error_total)
    theta_sets;
  (* solver-vs-solver timing *)
  let prob =
    Speccc_timeabs.Timeabs.problem ~budget:5 [ 3; 180; 60; 45; 90 ]
  in
  let tests = [
    Test.make ~name:"smt"
      (Staged.stage (fun () ->
           ignore (Speccc_timeabs.Timeabs.solve_smt prob)));
    Test.make ~name:"analytic"
      (Staged.stage (fun () ->
           ignore (Speccc_timeabs.Timeabs.solve_analytic prob)));
  ]
  in
  let time_of = measure_tests tests in
  Format.printf "@.solver timing on Θ={3,180,60,45,90}:@.";
  Format.printf "  bit-blasting SMT (paper's route): %10.6fs@."
    (time_of "smt");
  Format.printf "  analytic divisor search:          %10.6fs@."
    (time_of "analytic")

let ablation_semantic () =
  Format.printf
    "@.== Ablation: semantic reasoning (Sec. IV-D) on CARA row 0 ==@.@.";
  let config = Speccc_translate.Translate.default_config () in
  let result =
    Speccc_translate.Translate.specification config Cara.working_mode_texts
  in
  let with_props =
    List.concat_map
      (fun r -> Ltl.props r.Speccc_translate.Translate.formula)
      result.Speccc_translate.Translate.requirements
    |> List.sort_uniq compare
  in
  let without, with_reasoning =
    Speccc_reasoning.Semantic.reduction_count
      config.Speccc_translate.Translate.dictionary
      result.Speccc_translate.Translate.relations
  in
  Format.printf "adjective/adverb occurrences (subject, word):    %4d@."
    without;
  Format.printf "propositions they produce with reasoning:        %4d@."
    with_reasoning;
  Format.printf "total propositions in the translated spec:       %4d@."
    (List.length with_props);
  Format.printf
    "(without reasoning every occurrence would be its own proposition,@.";
  Format.printf
    " and mutual-exclusion assumptions would have to be added)@."

let ablation_engine () =
  Format.printf
    "@.== Ablation: the three engines on small specs ==@.@.";
  let specs = [
    ("response",      "G (i -> o)");
    ("delayed",       "G (i -> X X o)");
    ("eventual",      "G (i -> F o)");
    ("weak-until",    "o W i");
    ("two-req",       "G (i -> o) && G (!i -> X o2)");
  ]
  in
  let tests =
    List.concat_map
      (fun (name, text) ->
         let f = Ltl_parse.formula text in
         [
           Test.make ~name:(name ^ "/explicit")
             (Staged.stage (fun () ->
                  ignore
                    (Realizability.check ~engine:Realizability.Explicit
                       ~inputs:[ "i" ] ~outputs:[ "o"; "o2" ] [ f ])));
           Test.make ~name:(name ^ "/symbolic")
             (Staged.stage (fun () ->
                  ignore
                    (Realizability.check ~engine:Realizability.Symbolic
                       ~inputs:[ "i" ] ~outputs:[ "o"; "o2" ] [ f ])));
           Test.make ~name:(name ^ "/sat")
             (Staged.stage (fun () ->
                  ignore
                    (Satsynth.solve_iterative ~inputs:[ "i" ]
                       ~outputs:[ "o"; "o2" ] f)));
         ])
      specs
  in
  let time_of = measure_tests tests in
  Format.printf "%-12s %14s %14s %14s@." "spec" "explicit(s)" "symbolic(s)"
    "sat(s)";
  List.iter
    (fun (name, _) ->
       Format.printf "%-12s %14.6f %14.6f %14.6f@." name
         (time_of (name ^ "/explicit"))
         (time_of (name ^ "/symbolic"))
         (time_of (name ^ "/sat")))
    specs

let ablation_lookahead () =
  Format.printf
    "@.== Ablation: symbolic look-ahead (G4LTL's unroll parameter) ==@.@.";
  let scenario = Robot.scenario ~robots:2 ~rooms:5 in
  Format.printf "%-10s %10s %s@." "lookahead" "time(s)" "verdict";
  List.iter
    (fun lookahead ->
       let t0 = Unix.gettimeofday () in
       let report =
         Realizability.check ~engine:Realizability.Symbolic ~lookahead
           ~inputs:scenario.Robot.inputs ~outputs:scenario.Robot.outputs
           scenario.Robot.formulas
       in
       Format.printf "%-10d %10.4f %s@." lookahead
         (Unix.gettimeofday () -. t0)
         (verdict_string report.Realizability.verdict))
    [ 1; 2; 4; 6; 8 ]

let robot_sweep () =
  Format.printf
    "@.== Robot scaling sweep (\"different numbers of rooms and \
     robots\") ==@.@.";
  Format.printf "%-8s %-8s %10s %6s %6s %10s %s@." "robots" "rooms"
    "formulas" "in" "out" "time(s)" "verdict";
  List.iter
    (fun (robots, rooms) ->
       let scenario = Robot.scenario ~robots ~rooms in
       let t0 = Unix.gettimeofday () in
       let report =
         Realizability.check ~engine:Realizability.Symbolic
           ~inputs:scenario.Robot.inputs ~outputs:scenario.Robot.outputs
           scenario.Robot.formulas
       in
       Format.printf "%-8d %-8d %10d %6d %6d %10.4f %s@." robots rooms
         (List.length scenario.Robot.formulas)
         (List.length scenario.Robot.inputs)
         (List.length scenario.Robot.outputs)
         (Unix.gettimeofday () -. t0)
         (verdict_string report.Realizability.verdict))
    (* (3,6) runs ~80 s and (3,9) far beyond — the sweep stops where
       an interactive run stays pleasant; see EXPERIMENTS.md *)
    [ (1, 4); (1, 6); (1, 9); (1, 12); (2, 5); (2, 8); (3, 4) ]

let localize_sizes = [ 4; 8; 12; 16 ]

(* One localization run: n requirements where the conflict is between
   the first requirement and the last, with innocents in between.
   Returns (culprit, partner count, wall seconds). *)
let localize_row n =
  let explicit_options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Explicit }
  in
  let innocent k =
    Ltl_parse.formula
      (Printf.sprintf "G (i%d -> o%d)" (k mod 4) (k mod 4))
  in
  let formulas =
    (Ltl_parse.formula "G (trigger -> flag)"
     :: List.init (n - 2) (fun k -> innocent k))
    @ [ Ltl_parse.formula "G (trigger -> !flag)" ]
  in
  let check subset =
    let _, report =
      Pipeline.check_formulas ~options:explicit_options subset
    in
    report.Realizability.verdict = Realizability.Consistent
  in
  let t0 = Unix.gettimeofday () in
  match Localize.run ~check formulas with
  | Some result ->
    Some
      ( result.Localize.culprit,
        List.length result.Localize.partners,
        Unix.gettimeofday () -. t0 )
  | None -> None

let localize_bench () =
  Format.printf "@.== Localization scaling (Sec. V-B) ==@.@.";
  Format.printf "%-14s %10s %10s %10s@." "requirements" "culprit" "partners"
    "time(s)";
  List.iter
    (fun n ->
       match localize_row n with
       | Some (culprit, partners, seconds) ->
         Format.printf "%-14d %10d %10d %10.4f@." n culprit partners seconds
       | None -> Format.printf "%-14d (consistent?)@." n)
    localize_sizes

(* ---------- template-compiled automata ---------- *)

(* Per-instance wall times for the automaton construction over many
   distinct instances of each catalogue template, on both routes: the
   template compiler (one tableau per shape, atom substitution after)
   and the raw GPVW tableau (forced by a governed call, which bypasses
   every cache).  Distributions are skewed — the template route pays
   one expensive compile then streams cheap instantiations — so the
   table reports p50/p95 per group rather than a mean. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let template_families =
  let atom family i slot = Ltl.prop (Printf.sprintf "%s_%s%d" family slot i) in
  [
    ( "response",
      fun i ->
        Ltl.Always
          (Ltl.Implies
             (atom "resp" i "g", Ltl.Eventually (atom "resp" i "r"))) );
    ("absence", fun i -> Ltl.Always (Ltl.Not (atom "abs" i "p")));
    ( "universality",
      fun i -> Ltl.Always (Ltl.Implies (atom "univ" i "g", atom "univ" i "r"))
    );
    ("existence", fun i -> Ltl.Eventually (atom "exist" i "p"));
    ( "precedence",
      fun i ->
        Ltl.Weak_until (Ltl.Not (atom "prec" i "p"), atom "prec" i "s") );
  ]

let template_bench () =
  Format.printf "@.== Template-compiled automata (%d instances/group) ==@.@."
    200;
  let instances = 200 in
  Format.printf "%-14s %-10s %12s %12s %12s@." "template" "route" "total(s)"
    "p50(us)" "p95(us)";
  List.iter
    (fun (family, make) ->
       let formulas = List.init instances make in
       let run route build =
         let walls =
           List.map
             (fun f ->
                let t0 = Unix.gettimeofday () in
                ignore (build f);
                Unix.gettimeofday () -. t0)
             formulas
         in
         let sorted = Array.of_list walls in
         Array.sort compare sorted;
         Format.printf "%-14s %-10s %12.4f %12.1f %12.1f@." family route
           (List.fold_left ( +. ) 0. walls)
           (percentile sorted 0.50 *. 1e6)
           (percentile sorted 0.95 *. 1e6)
       in
       run "template" (fun f -> Speccc_automata.Nbw.of_ltl f);
       run "tableau"
         (fun f ->
            Speccc_automata.Nbw.of_ltl
              ~budget:(Speccc_runtime.Budget.create ~fuel:10_000_000 ())
              f))
    template_families

(* ---------- edit latency (watch sessions) ---------- *)

(* A CARA-sized live document (14 requirements over 9 propositions,
   consistent throughout) and a script of single-sentence edits, each
   preserving consistency and producing a document the session has
   never seen (so the whole-document verdict cache cannot hit — the
   numbers measure genuine incremental re-checking).  Three walls per
   edit: the watch session's incremental check, a cold fresh-session
   check (same decomposed engine, no inherited state), and the stock
   full pipeline — what every edit used to re-pay. *)

let live_document_items =
  [
    ("R1", "If the button is pressed, the pump is started.");
    ("R2", "If the occlusion is present, the alarm is triggered.");
    ("R3", "If the pressure is high, the valve is opened.");
    ("R4", "If the signal is low, the monitor is enabled.");
    ("R5", "If the button is pressed, the monitor is enabled.");
    ("R6", "If the occlusion is present, the valve is opened.");
    ("R7", "If the pressure is high, the alarm is triggered.");
    ("R8", "If the signal is low, the pump is started.");
    ("R9", "If the button is pressed, the alarm is triggered.");
    ("R10", "If the occlusion is present, the pump is started.");
    ("R11", "If the pressure is high, the monitor is enabled.");
    ("R12", "If the signal is low, the valve is opened.");
    ("R13", "When the pump is started, eventually the cuff is inflated.");
    ("R14", "When the valve is opened, eventually the cuff is inflated.");
  ]

let live_edit_script =
  [
    ("R5", "If the button is pressed, the valve is opened.");
    ("R9", "If the button is pressed, the cuff is inflated.");
    ("R11", "If the pressure is high, the pump is started.");
    ("R12", "If the signal is low, the alarm is triggered.");
    ("R2", "If the occlusion is present, the monitor is enabled.");
    ("R7", "If the pressure is high, the cuff is inflated.");
    ("R4", "If the signal is low, the pump is started.");
    ("R14", "When the monitor is enabled, eventually the cuff is inflated.");
    ("R6", "If the occlusion is present, the alarm is triggered.");
    ("R1", "If the button is pressed, the monitor is enabled.");
  ]

(* Nearest-rank percentile over seconds. *)
let percentile p values =
  match List.sort compare values with
  | [] -> 0.
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))

let edit_latency_rows ~smoke =
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Explicit }
  in
  let doc =
    List.mapi
      (fun line (id, text) -> { Document.id; text; line = line + 1 })
      live_document_items
  in
  let session = Watch.create ~options doc in
  ignore (Watch.check session);
  let script =
    if smoke then List.filteri (fun i _ -> i < 4) live_edit_script
    else live_edit_script
  in
  List.map
    (fun (id, text) ->
       (match Watch.edit session ~id ~text with
        | Ok () -> ()
        | Error message -> failwith ("edit_latency: " ^ message));
       let live = Watch.check session in
       let cold = Watch.check_cold ~options (Watch.document session) in
       if Watch.fingerprint live <> Watch.fingerprint cold then
         failwith "edit_latency: incremental check diverged from cold";
       let t0 = Unix.gettimeofday () in
       let outcome =
         Pipeline.run_document ~options (Watch.document session)
       in
       let pipeline_s = Unix.gettimeofday () -. t0 in
       (match outcome.Pipeline.report.Realizability.verdict with
        | Realizability.Consistent -> ()
        | _ -> failwith "edit_latency: the live document must stay consistent");
       (id, live.Watch.wall_s, cold.Watch.wall_s, pipeline_s))
    script

let edit_latency_summary rows =
  let incr = List.map (fun (_, i, _, _) -> i) rows in
  let cold = List.map (fun (_, _, c, _) -> c) rows in
  let pipeline = List.map (fun (_, _, _, p) -> p) rows in
  ( (percentile 50. incr, percentile 95. incr),
    (percentile 50. cold, percentile 95. cold),
    (percentile 50. pipeline, percentile 95. pipeline) )

let edit_latency_bench () =
  Format.printf "@.== Edit latency (watch sessions) ==@.@.";
  Format.printf "%-6s %12s %12s %14s@." "edit" "incr(ms)" "cold(ms)"
    "pipeline(ms)";
  let rows = edit_latency_rows ~smoke:false in
  List.iter
    (fun (id, incr, cold, pipeline) ->
       Format.printf "%-6s %12.3f %12.3f %14.3f@." id (incr *. 1000.)
         (cold *. 1000.) (pipeline *. 1000.))
    rows;
  let (i50, i95), (c50, c95), (p50, p95) = edit_latency_summary rows in
  Format.printf "@.p50  incremental %.3fms  cold %.3fms  pipeline %.3fms@."
    (i50 *. 1000.) (c50 *. 1000.) (p50 *. 1000.);
  Format.printf "p95  incremental %.3fms  cold %.3fms  pipeline %.3fms@."
    (i95 *. 1000.) (c95 *. 1000.) (p95 *. 1000.);
  Format.printf "p95 speedup: %.1fx vs cold session, %.1fx vs full pipeline@."
    (c95 /. i95) (p95 /. i95)

(* ---------- json trajectory output ----------

   Machine-readable perf snapshot for tracking the trajectory across
   PRs: localize scaling walls, single-shot Table I row walls, and the
   memoization counters accumulated while producing them.  Set
   SPECCC_BENCH_SMOKE=1 (as CI does) for a reduced quota. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let bench_json () =
  let smoke = Sys.getenv_opt "SPECCC_BENCH_SMOKE" <> None in
  let path = "BENCH_speccc.json" in
  Format.printf "@.== JSON trajectory (%s%s) ==@.@." path
    (if smoke then ", smoke quota" else "");
  let sizes = if smoke then [ 4; 8 ] else localize_sizes in
  let localize_entries =
    List.filter_map
      (fun n ->
         match localize_row n with
         | Some (culprit, partners, seconds) ->
           Format.printf "localize n=%-3d %8.4fs@." n seconds;
           Some
             (Printf.sprintf
                "{\"n\":%d,\"seconds\":%.4f,\"culprit\":%d,\"partners\":%d}"
                n seconds culprit partners)
         | None -> None)
      sizes
  in
  let rows =
    if smoke then
      List.filteri (fun i _ -> i < 4) Table1.rows
    else Table1.rows
  in
  let table1_entries =
    List.map
      (fun row ->
         let p = prepare_row row in
         let name = row.Table1.group ^ ":" ^ row.Table1.row_id in
         let t0 = Unix.gettimeofday () in
         let report = check_prepared p in
         let seconds = Unix.gettimeofday () -. t0 in
         Format.printf "table1 %-12s %8.4fs %s@." name seconds
           (verdict_string report.Realizability.verdict);
         Printf.sprintf "{\"row\":\"%s\",\"seconds\":%.4f,\"verdict\":\"%s\"}"
           (json_escape name) seconds
           (json_escape (verdict_string report.Realizability.verdict)))
      rows
  in
  let edit_rows = edit_latency_rows ~smoke in
  let (i50, i95), (c50, c95), (p50, p95) = edit_latency_summary edit_rows in
  List.iter
    (fun (id, incr, cold, pipeline) ->
       Format.printf "edit %-5s incr %8.3fms  cold %8.3fms  pipeline %8.3fms@."
         id (incr *. 1000.) (cold *. 1000.) (pipeline *. 1000.))
    edit_rows;
  let edit_entries =
    List.map
      (fun (id, incr, cold, pipeline) ->
         Printf.sprintf
           "{\"id\":\"%s\",\"incr_ms\":%.4f,\"cold_ms\":%.4f,\
            \"pipeline_ms\":%.4f}"
           (json_escape id) (incr *. 1000.) (cold *. 1000.)
           (pipeline *. 1000.))
      edit_rows
  in
  let edit_summary =
    Printf.sprintf
      "\"sentences\":%d,\"edits\":[%s],\"incr_p50_ms\":%.4f,\
       \"incr_p95_ms\":%.4f,\"cold_p50_ms\":%.4f,\"cold_p95_ms\":%.4f,\
       \"pipeline_p50_ms\":%.4f,\"pipeline_p95_ms\":%.4f,\
       \"speedup_vs_cold_p95\":%.2f,\"speedup_vs_pipeline_p95\":%.2f"
      (List.length live_document_items)
      (String.concat "," edit_entries)
      (i50 *. 1000.) (i95 *. 1000.) (c50 *. 1000.) (c95 *. 1000.)
      (p50 *. 1000.) (p95 *. 1000.)
      (c95 /. i95) (p95 /. i95)
  in
  let cache_entries =
    List.map
      (fun s ->
         Printf.sprintf
           "{\"name\":\"%s\",\"hits\":%d,\"misses\":%d,\"evictions\":%d,\
            \"size\":%d,\"capacity\":%d}"
           (json_escape s.Speccc_cache.Cache.name)
           s.Speccc_cache.Cache.hits s.Speccc_cache.Cache.misses
           s.Speccc_cache.Cache.evictions s.Speccc_cache.Cache.size
           s.Speccc_cache.Cache.capacity)
      (Speccc_cache.Cache.stats ())
  in
  let h = Ltl.hashcons_stats () in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema\":\"speccc-bench-v1\",\"smoke\":%b,\n\
     \"localize\":[%s],\n\
     \"table1\":[%s],\n\
     \"edit_latency\":{%s},\n\
     \"caches\":[%s],\n\
     \"hashcons\":{\"nodes\":%d,\"hits\":%d,\"misses\":%d}}\n"
    smoke
    (String.concat "," localize_entries)
    (String.concat "," table1_entries)
    edit_summary
    (String.concat "," cache_entries)
    h.Ltl.nodes h.Ltl.hc_hits h.Ltl.hc_misses;
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  let groups =
    match Array.to_list Sys.argv with
    | _ :: ([ _ ] as args) -> args
    | _ :: args when args <> [] -> args
    | _ ->
      [ "table1"; "fig1"; "fig2"; "ablations"; "robots"; "localize";
        "template"; "edit" ]
  in
  List.iter
    (fun group ->
       match group with
       | "table1" -> table1 ()
       | "fig1" -> fig1 ()
       | "fig2" -> fig2 ()
       | "ablations" ->
         ablation_timeabs ();
         ablation_semantic ();
         ablation_engine ();
         ablation_lookahead ()
       | "ablation-timeabs" -> ablation_timeabs ()
       | "ablation-semantic" -> ablation_semantic ()
       | "ablation-engine" -> ablation_engine ()
       | "ablation-lookahead" -> ablation_lookahead ()
       | "robots" -> robot_sweep ()
       | "localize" -> localize_bench ()
       | "template" -> template_bench ()
       | "edit" | "edit-latency" | "edit_latency" -> edit_latency_bench ()
       | "json" -> bench_json ()
       | other -> Format.printf "unknown bench group %S@." other)
    groups
