(* Scratch profiler for the synthesis core: single-shot walls for the
   hot BENCH rows without bechamel overhead.  Usage:
     dune exec bench/profile.exe -- tele1 loc16 *)

open Speccc_logic
open Speccc_core
open Speccc_synthesis
open Speccc_partition
open Speccc_casestudies

let sym_options =
  { (Pipeline.default_options ()) with
    Pipeline.engine = Realizability.Symbolic }

let row_named want =
  List.find
    (fun r -> r.Table1.group ^ ":" ^ r.Table1.row_id = want)
    Table1.rows

let prepare row =
  match row.Table1.source with
  | Table1.Sentences texts ->
    let outcome = Pipeline.run ~options:sym_options texts in
    let t = outcome.Pipeline.times in
    Printf.printf
      "  stages: translate %.3fs abstract %.3fs partition %.3fs synth %.3fs\n%!"
      t.Pipeline.translation_s t.Pipeline.abstraction_s t.Pipeline.partition_s
      t.Pipeline.synthesis_s;
    (outcome.Pipeline.formulas, outcome.Pipeline.partition.Partition.partition)
  | Table1.Formulas (formulas, inputs, outputs) ->
    (formulas, { Partition.inputs; outputs })

let table_row name =
  let tp = Unix.gettimeofday () in
  let formulas, partition = prepare (row_named name) in
  Printf.printf "%s: prepare %.3fs\n%!" name (Unix.gettimeofday () -. tp);
  let t0 = Unix.gettimeofday () in
  let report =
    Realizability.check ~engine:Realizability.Symbolic
      ~inputs:partition.Partition.inputs
      ~outputs:partition.Partition.outputs formulas
  in
  Printf.printf "%s: %.3fs engine=%s detail=%s\n%!" name
    (Unix.gettimeofday () -. t0)
    report.Realizability.engine_used report.Realizability.detail

let localize n =
  let explicit_options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Explicit }
  in
  let innocent k =
    Ltl_parse.formula
      (Printf.sprintf "G (i%d -> o%d)" (k mod 4) (k mod 4))
  in
  let formulas =
    (Ltl_parse.formula "G (trigger -> flag)"
     :: List.init (n - 2) (fun k -> innocent k))
    @ [ Ltl_parse.formula "G (trigger -> !flag)" ]
  in
  let check subset =
    let _, report =
      Pipeline.check_formulas ~options:explicit_options subset
    in
    report.Realizability.verdict = Realizability.Consistent
  in
  let t0 = Unix.gettimeofday () in
  (match Localize.run ~check formulas with
   | Some result ->
     Printf.printf "localize n=%d: %.3fs culprit=%d\n%!" n
       (Unix.gettimeofday () -. t0)
       result.Localize.culprit
   | None -> Printf.printf "localize n=%d: consistent?\n%!" n)

let stages name =
  let row = row_named name in
  let texts =
    match row.Table1.source with
    | Table1.Sentences texts -> texts
    | Table1.Formulas _ -> []
  in
  let t0 = Unix.gettimeofday () in
  let config = Speccc_translate.Translate.default_config () in
  let translation = Speccc_translate.Translate.specification config texts in
  Printf.printf "translate: %.3fs\n%!" (Unix.gettimeofday () -. t0);
  let raw =
    List.map
      (fun r -> r.Speccc_translate.Translate.formula)
      translation.Speccc_translate.Translate.requirements
  in
  let t0 = Unix.gettimeofday () in
  let thetas = Speccc_timeabs.Timeabs.thetas_of_formulas raw in
  Printf.printf "thetas (%d): %.3fs\n%!" (List.length thetas)
    (Unix.gettimeofday () -. t0);
  let t0 = Unix.gettimeofday () in
  (match thetas with
   | [] -> ()
   | _ ->
     let problem = Speccc_timeabs.Timeabs.problem ~budget:5 thetas in
     ignore (Speccc_timeabs.Timeabs.solve_smt problem));
  Printf.printf "solve_smt: %.3fs\n%!" (Unix.gettimeofday () -. t0);
  let formulas =
    match thetas with
    | [] -> raw
    | _ ->
      let problem = Speccc_timeabs.Timeabs.problem ~budget:5 thetas in
      let sol = Speccc_timeabs.Timeabs.solve_smt problem in
      List.map (Speccc_timeabs.Timeabs.apply sol) raw
  in
  let partition =
    (Partition.of_requirements formulas).Partition.partition
  in
  Printf.printf "partition: %d in, %d out\n%!"
    (List.length partition.Partition.inputs)
    (List.length partition.Partition.outputs);
  let spec = Ltl.conj_list formulas in
  Printf.printf "spec size: %d, has_liveness: %b\n%!" (Ltl.size spec)
    (Speccc_logic.Classify.has_liveness spec);
  let t0 = Unix.gettimeofday () in
  let bounded = Speccc_logic.Classify.bound_liveness ~bound:6 spec in
  Printf.printf "bound_liveness: %.3fs size=%d\n%!"
    (Unix.gettimeofday () -. t0) (Ltl.size bounded);
  let t0 = Unix.gettimeofday () in
  (match
     Obligation.solve ~inputs:partition.Partition.inputs
       ~outputs:partition.Partition.outputs bounded
   with
   | Obligation.Realizable s ->
     Printf.printf "obligation: %.3fs realizable %s\n%!"
       (Unix.gettimeofday () -. t0) (Obligation.stats s);
     let t0 = Unix.gettimeofday () in
     (match Obligation.to_mealy s with
      | Some m ->
        Printf.printf "to_mealy: %.3fs states=%d\n%!"
          (Unix.gettimeofday () -. t0) m.Mealy.num_states;
        let t0 = Unix.gettimeofday () in
        let m' = Minimize.minimize m in
        Printf.printf "minimize: %.3fs states=%d\n%!"
          (Unix.gettimeofday () -. t0) m'.Mealy.num_states
      | None ->
        Printf.printf "to_mealy: %.3fs overflow\n%!"
          (Unix.gettimeofday () -. t0))
   | Obligation.Unrealizable ->
     Printf.printf "obligation: %.3fs UNREALIZABLE\n%!"
       (Unix.gettimeofday () -. t0))

let () =
  Array.iteri
    (fun i arg ->
       if i > 0 then
         match arg with
         | "tele1" -> table_row "TELE:1"
         | "stele1" -> stages "TELE:1"
         | "scara221" -> stages "CARA:2.2.1"
         | "cara32" -> table_row "CARA:3.2"
         | "cara221" -> table_row "CARA:2.2.1"
         | "loc8" -> localize 8
         | "loc16" -> localize 16
         | other -> Printf.printf "unknown %s\n" other)
    Sys.argv
